"""Phase cost breakdowns for the hybrid engine (Figures 8, 10, 12).

The paper stacks the combined-C#/C evaluation time into phases: iterating
the input (managed), applying predicates (managed), staging (managed), the
native operation (aggregation / quicksort / hash tables), and returning
the result.  We measure each phase with a dedicated loop that performs
exactly that phase's work — the same incremental-variant methodology the
stacked figures imply — over the library's own staging buffers and
kernels, so the numbers track the real engine.

Phase labels match the paper's legends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Sequence, Tuple

import numpy as np

from ..expressions.evaluator import make_record_type
from ..runtime import vectorized as _vec
from ..storage.buffers import BufferList
from ..storage.schema import Field, Schema

__all__ = [
    "PhaseBreakdown",
    "aggregation_breakdown",
    "sort_breakdown",
    "join_breakdown",
]


@dataclass
class PhaseBreakdown:
    """Seconds per phase, in stacked-figure order."""

    label: str
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def as_row(self) -> str:
        parts = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in self.phases.items())
        return f"{self.label}: total={self.total * 1e3:.1f}ms [{parts}]"


def _timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


_STAGED_AGG = Schema(
    [
        Field("rf", "str", 1),
        Field("ls", "str", 1),
        Field("qty", "float"),
        Field("price", "float"),
        Field("disc", "float"),
    ],
    name="StagedAgg",
)


def aggregation_breakdown(lineitems: Sequence[Any], qmax: float) -> PhaseBreakdown:
    """Figure 8: Q1-style aggregation phases at one selectivity.

    Phases: Iterate data (C#) / Apply predicates (C#) / Data Staging (C#)
    / Aggregation (C) / Return Result (C/C#).
    """
    out = PhaseBreakdown(label=f"agg@qmax={qmax}")

    def iterate() -> int:
        count = 0
        for _ in lineitems:
            count += 1
        return count

    out.phases["iterate"], _ = _timed(iterate)

    def predicates() -> int:
        count = 0
        for l in lineitems:
            if l.l_quantity <= qmax:
                count += 1
        return count

    predicate_total, _ = _timed(predicates)
    out.phases["predicates"] = max(0.0, predicate_total - out.phases["iterate"])

    def stage() -> BufferList:
        buffers = BufferList(_STAGED_AGG)
        append = buffers.append
        for l in lineitems:
            if l.l_quantity <= qmax:
                append(
                    (
                        l.l_returnflag.encode(),
                        l.l_linestatus.encode(),
                        l.l_quantity,
                        l.l_extendedprice,
                        l.l_discount,
                    )
                )
        return buffers

    staging_total, buffers = _timed(stage)
    out.phases["staging"] = max(0.0, staging_total - predicate_total)
    staged = buffers.materialize()

    def aggregate():
        return _vec.group_aggregate(
            (staged["rf"], staged["ls"]),
            [
                ("sum", staged["qty"]),
                ("sum", staged["price"] * (1 - staged["disc"])),
                ("avg", staged["qty"]),
                ("count", None),
            ],
        )

    out.phases["aggregation"], (gkeys, gaggs) = _timed(aggregate)

    record_type = make_record_type(("rf", "ls", "sum_qty", "sum_disc", "avg_qty", "n"))

    def return_result() -> list:
        return list(
            _vec.decode_rows(
                (gkeys[0], gkeys[1], gaggs[0], gaggs[1], gaggs[2], gaggs[3]),
                ("str", "str", "float", "float", "float", "int"),
                record_type,
            )
        )

    out.phases["return_result"], _ = _timed(return_result)
    return out


def sort_breakdown(lineitems: Sequence[Any], qmax: float) -> PhaseBreakdown:
    """Figure 10: sort phases — keys+indexes staged, quicksort native,
    objects looked back up managed-side (the Min protocol, as the paper's
    §7.2 describes)."""
    out = PhaseBreakdown(label=f"sort@qmax={qmax}")

    def iterate() -> int:
        count = 0
        for _ in lineitems:
            count += 1
        return count

    out.phases["iterate"], _ = _timed(iterate)

    def predicates() -> int:
        count = 0
        for l in lineitems:
            if l.l_quantity <= qmax:
                count += 1
        return count

    predicate_total, _ = _timed(predicates)
    out.phases["predicates"] = max(0.0, predicate_total - out.phases["iterate"])

    def stage():
        objs = []
        keys = []
        for l in lineitems:
            if l.l_quantity <= qmax:
                objs.append(l)
                keys.append(l.l_extendedprice)
        return objs, np.asarray(keys)

    staging_total, (objs, keys) = _timed(stage)
    out.phases["staging"] = max(0.0, staging_total - predicate_total)

    out.phases["quicksort"], order = _timed(
        lambda: _vec.sort_indexes((keys,), (False,))
    )

    def return_result() -> int:
        count = 0
        for i in order:
            if objs[i] is not None:  # the managed look-up per result
                count += 1
        return count

    out.phases["return_result"], _ = _timed(return_result)
    return out


_STAGED_JOIN_LI = Schema(
    [Field("orderkey", "int"), Field("price", "float"), Field("disc", "float")],
    name="StagedJoinLI",
)


def join_breakdown(
    lineitems: Sequence[Any],
    orders: Sequence[Any],
    customers: Sequence[Any],
    qmax: float,
    order_cutoff,
    segment: str,
) -> PhaseBreakdown:
    """Figure 12: join phases for the Max, full-staging variant."""
    out = PhaseBreakdown(label=f"join@qmax={qmax}")

    def iterate() -> int:
        count = 0
        for _ in lineitems:
            count += 1
        for _ in orders:
            count += 1
        for _ in customers:
            count += 1
        return count

    out.phases["iterate"], _ = _timed(iterate)

    def predicates() -> int:
        count = 0
        for l in lineitems:
            if l.l_quantity <= qmax:
                count += 1
        for o in orders:
            if o.o_orderdate < order_cutoff:
                count += 1
        for c in customers:
            if c.c_mktsegment == segment:
                count += 1
        return count

    predicate_total, _ = _timed(predicates)
    out.phases["predicates"] = max(0.0, predicate_total - out.phases["iterate"])

    def stage():
        li = BufferList(_STAGED_JOIN_LI)
        for l in lineitems:
            if l.l_quantity <= qmax:
                li.append((l.l_orderkey, l.l_extendedprice, l.l_discount))
        cust = np.asarray(
            [c.c_custkey for c in customers if c.c_mktsegment == segment]
        )
        ords = np.asarray(
            [
                (o.o_orderkey, o.o_custkey)
                for o in orders
                if o.o_orderdate < order_cutoff
            ],
            dtype=np.int64,
        ).reshape(-1, 2)
        return li.materialize(), cust, ords

    staging_total, (staged_li, cust_keys, ord_rows) = _timed(stage)
    out.phases["staging"] = max(0.0, staging_total - predicate_total)

    def build_tables():
        from ..runtime.streaming import StreamingJoinProbe

        if len(ord_rows):
            li_mask, _ = _vec.hash_join_indexes(ord_rows[:, 1], cust_keys)
            open_orders = ord_rows[li_mask, 0]
        else:
            open_orders = np.zeros(0, dtype=np.int64)
        return StreamingJoinProbe(open_orders)

    out.phases["build_hash_tables"], probe = _timed(build_tables)

    def probe_and_return() -> int:
        li, _ = probe.probe(staged_li["orderkey"])
        revenue = staged_li["price"][li] * (1 - staged_li["disc"][li])
        return int(revenue.shape[0])

    out.phases["probe_and_return"], _ = _timed(probe_and_return)
    return out
