"""A multi-level set-associative cache simulator.

The paper profiles last-level (L3) cache misses with hardware counters
(Figure 14).  Pure Python cannot read PMUs, so we *simulate*: the memory
model (:mod:`repro.profiling.memory_model`) synthesizes the address trace
each engine's storage layout and access pattern would produce, and this
simulator replays it through an inclusive three-level LRU hierarchy.

Absolute miss counts are not comparable to the paper's hardware; the
*relative ordering across engines* — the figure's actual claim — is what
the simulation preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = [
    "CacheLevelConfig",
    "CacheLevel",
    "CacheHierarchy",
    "default_hierarchy",
    "scaled_hierarchy",
    "proportional_hierarchy",
]


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"{self.name}: size must be a multiple of ways*line_bytes"
            )

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class CacheLevel:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one line address (already divided by line size).

        Returns True on hit.  LRU per set via an access clock; the dict
        doubles as the tag store (tag → last-used tick).
        """
        self._clock += 1
        index = line % self.config.sets
        ways = self._sets[index]
        if line in ways:
            ways[line] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.config.ways:
            victim = min(ways, key=ways.get)
            del ways[victim]
        ways[line] = self._clock
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def install(self, line: int) -> None:
        """Insert a line without touching hit/miss statistics (prefetch)."""
        self._clock += 1
        index = line % self.config.sets
        ways = self._sets[index]
        if line in ways:
            return
        if len(ways) >= self.config.ways:
            victim = min(ways, key=ways.get)
            del ways[victim]
        ways[line] = self._clock


#: i5-2415M-inspired geometry (the paper's test machine): 32 KiB L1d,
#: 256 KiB L2, 3 MiB shared L3.
_DEFAULT_LEVELS = (
    CacheLevelConfig("L1", 32 * 1024, ways=8),
    CacheLevelConfig("L2", 256 * 1024, ways=8),
    CacheLevelConfig("L3", 3 * 1024 * 1024, ways=12),
)


def default_hierarchy() -> "CacheHierarchy":
    return CacheHierarchy(_DEFAULT_LEVELS)


#: the paper runs SF-1 (1 GB) against a 3 MiB LLC — the dataset exceeds the
#: cache by orders of magnitude.  Replaying laptop-scale (SF ≪ 1) traces
#: against full-size caches would let everything fit and flatten every
#: curve, so the scaled hierarchy shrinks each level to keep the
#: data-to-cache ratio in the spilling regime.
_SCALED_LEVELS = (
    CacheLevelConfig("L1", 4 * 1024, ways=8),
    CacheLevelConfig("L2", 32 * 1024, ways=8),
    CacheLevelConfig("L3", 256 * 1024, ways=8),
)


def scaled_hierarchy() -> "CacheHierarchy":
    return CacheHierarchy(_SCALED_LEVELS)


def proportional_hierarchy(scale: float) -> "CacheHierarchy":
    """The paper's hierarchy shrunk by *scale* (the dataset's scale factor).

    Replaying an SF-``scale`` workload against caches scaled by the same
    factor preserves the SF-1-vs-3MiB working-set ratios that Figure 14's
    effects (table residency, staging pressure) depend on.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    granularity = 8 * 64  # ways × line: smallest valid size step
    levels = []
    for config in _DEFAULT_LEVELS:
        size = max(
            granularity, int(config.size_bytes * scale) // granularity * granularity
        )
        levels.append(CacheLevelConfig(config.name, size, ways=8))
    return CacheHierarchy(levels)


class CacheHierarchy:
    """An inclusive L1→L2→L3 hierarchy replaying address traces.

    A stream prefetcher models the hardware's: when consecutive demand
    misses fall on adjacent lines, the next ``prefetch_lines`` lines are
    installed in the outer levels, so sequential scans stop missing while
    random probes keep paying full price — the asymmetry the paper's
    staging-vs-probing analysis rests on.
    """

    def __init__(
        self,
        configs: Sequence[CacheLevelConfig] = _DEFAULT_LEVELS,
        prefetch_lines: int = 3,
    ):
        if not configs:
            raise ValueError("at least one cache level required")
        self.levels = [CacheLevel(c) for c in configs]
        self.line_bytes = configs[0].line_bytes
        self.prefetch_lines = prefetch_lines
        self._last_miss_line: int | None = None

    def access(self, address: int) -> str:
        """One byte-address access; returns the name of the level that hit
        (or 'memory')."""
        line = address // self.line_bytes
        for level in self.levels:
            if level.access(line):
                return level.config.name
        if self.prefetch_lines and self._last_miss_line is not None:
            stride = line - self._last_miss_line
            # ascending strides up to 2 KiB look like a stream to the
            # hardware stride prefetcher
            if 0 < stride <= 2048 // self.line_bytes:
                for ahead in range(1, self.prefetch_lines + 1):
                    target = line + ahead * stride
                    for level in self.levels[1:]:
                        level.install(target)
        self._last_miss_line = line
        return "memory"

    def replay(self, addresses: Iterable[int]) -> Dict[str, int]:
        """Replay a trace; returns per-level miss counts (+ total accesses)."""
        if isinstance(addresses, np.ndarray):
            addresses = addresses.tolist()
        count = 0
        for address in addresses:
            self.access(address)
            count += 1
        stats = {level.config.name + "_misses": level.misses for level in self.levels}
        stats["accesses"] = count
        return stats

    @property
    def llc_misses(self) -> int:
        """Last-level (the paper's reported) miss count."""
        return self.levels[-1].misses

    def reset(self) -> None:
        for level in self.levels:
            level.reset_stats()
            level._sets = [dict() for _ in range(level.config.sets)]
