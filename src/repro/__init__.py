"""repro — query compilation for language-integrated query in Python.

A full reproduction of *"Code generation for efficient query processing in
managed runtimes"* (Nagel, Bierman, Viglas — VLDB 2014), transposed from
C#/.NET + C to Python + NumPy.  See DESIGN.md for the system inventory and
the substitution table.

Public surface (stable):

* :class:`~repro.query.queryable.Query` and the source constructors
  :func:`from_iterable` / :func:`from_struct_array` — the LINQ-style API;
* :func:`~repro.expressions.builder.P`, :func:`~repro.expressions.builder.new`,
  :func:`~repro.expressions.builder.if_then_else` — query-building helpers;
* the engine registry in :mod:`repro.query.provider` (``linq``,
  ``compiled``, ``native``, ``hybrid``, ``hybrid_buffered``);
* :class:`~repro.storage.struct_array.StructArray` — the array-of-structs
  row store that unlocks the native engine.
"""

from .errors import (
    AdmissionRejected,
    CodegenError,
    ExecutionError,
    ExpressionError,
    QueryCancelled,
    QueryTimeoutError,
    ReproError,
    SchemaError,
    ServiceError,
    SessionClosed,
    TraceError,
    TranslationError,
    UnsupportedQueryError,
)
from .expressions import P, if_then_else, new

__version__ = "1.0.0"

__all__ = [
    "P",
    "new",
    "if_then_else",
    "ReproError",
    "ExpressionError",
    "TraceError",
    "TranslationError",
    "UnsupportedQueryError",
    "CodegenError",
    "ExecutionError",
    "SchemaError",
    "QueryCancelled",
    "QueryTimeoutError",
    "ServiceError",
    "AdmissionRejected",
    "SessionClosed",
    "__version__",
]


def __getattr__(name):
    # heavier modules are imported lazily so `import repro` stays cheap
    if name in {"Query", "from_iterable", "from_struct_array", "QList"}:
        from . import query as _query

        return getattr(_query, name)
    if name == "StructArray":
        from .storage.struct_array import StructArray

        return StructArray
    if name in {"QueryService", "QuerySession", "PreparedStatement"}:
        from . import service as _service

        return getattr(_service, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
