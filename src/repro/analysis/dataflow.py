"""Abstract interpretation over the pipeline IR → :class:`DataflowFacts`.

Runs once per query between :func:`repro.codegen.lower.lower_plan` and
backend emission (the provider caches the result on ``QueryIR.facts``).
Three cooperating analyses:

1. **value-domain propagation** — one :class:`~repro.analysis.domains.
   Interval` per record field, seeded from the scan's schema token (and,
   for divisor proofs only, registered column statistics), narrowed
   through filter conjuncts and widened through arithmetic.  Walking the
   pipelines in schedule order carries domains across breakers: a group
   count is ``[1, +inf)``, a min/max inherits its selector's domain.
2. **lambda effects** — merged from the per-lambda
   :class:`~repro.analysis.effects.EffectReport` attached at trace time.
3. **contradiction / dead-code detection** — an always-false conjunct or
   an emptied interval marks the pipeline statically empty; a filter
   whose conjuncts are all provably true is recorded for stripping.

Soundness notes baked into the walk:

* Divisions inside a filter predicate are proved against the state
  *before* that filter — the native backend evaluates a predicate's
  conjuncts on the uncompressed frame, so intra-predicate narrowing must
  not feed divisor proofs.  Projections and sinks see post-filter state
  (every backend compresses/short-circuits between operators).
* Dead-pipeline collapse and proven-filter stripping are only recorded
  when the relevant expressions cannot raise (no divisions, no
  ``Call``/``Method`` nodes), so the interpreted engine — which still
  evaluates them row by row — agrees on error behaviour.
* Facts derived from parameter bindings are only reusable under the
  same bindings; the provider memoizes facts per binding set and keys
  compiled code by :meth:`DataflowFacts.cache_token`, so bindings that
  lead to the same emission decisions still share one artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..expressions.nodes import (
    COMPARISON_OPS,
    Binary,
    Call,
    Conditional,
    Constant,
    Expr,
    Lambda,
    Member,
    Method,
    New,
    Param,
    Unary,
    Var,
    children,
    walk,
)
from ..plans.logical import (
    Filter,
    FlatMap,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Project,
    ScalarAggregate,
    Scan,
    SetOp,
    Sort,
    TopN,
)
from .domains import (
    BOOL,
    Interval,
    TOP,
    abs_interval,
    add_intervals,
    interval_compare,
    is_numeric,
    mul_intervals,
    neg_interval,
    point,
    sub_intervals,
)
from .effects import EffectReport, plan_effects

__all__ = ["DataflowFacts", "analyze_ir", "DIVISION_OPS"]

#: binary operators whose right operand must be proven nonzero
DIVISION_OPS = frozenset({"truediv", "floordiv", "mod"})

_FLIP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}
_NEGATE = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}

_MISSING = object()


@dataclass(frozen=True)
class DataflowFacts:
    """Per-query facts every backend consumes for guard elision."""

    effects: EffectReport
    division_sites: int = 0
    divisions_proven: int = 0
    #: group-aggregate avg extractions (group count is provably >= 1)
    avg_guards: int = 0
    #: scalar-aggregate empty-input guards (emptiness is not provable)
    scalar_guards: int = 0
    dead_pipelines: Tuple[Tuple[int, str], ...] = ()
    #: (pid, operator index) of filters whose conjuncts are all provably true
    proven_filters: Tuple[Tuple[int, int], ...] = ()
    notes: Tuple[str, ...] = ()

    @property
    def all_divisions_proven(self) -> bool:
        return self.divisions_proven >= self.division_sites

    def guards_elidable(self) -> int:
        """Guards a backend may drop when elision is enabled."""
        divisions = self.division_sites if self.all_divisions_proven else 0
        return divisions + self.avg_guards + len(self.proven_filters)

    def cache_token(self) -> Tuple[Any, ...]:
        """The emission-relevant decisions, for compiled-code cache keys.

        Facts are derived through parameter bindings, but generated code
        only varies with the decisions captured here — so binding sets
        that lead to an identical token keep sharing one compiled
        artifact (parameterized queries stay parameterized), while a
        changed proof outcome forces a sound recompilation.
        """
        return (
            self.division_sites > 0 and self.all_divisions_proven,
            self.dead_pipelines,
            self.proven_filters,
        )

    def render_lines(self, elide: bool) -> List[str]:
        """Human-readable summary for ``explain()`` (deterministic)."""
        lines = [f"effects: {self.effects.describe()}"]
        if self.division_sites:
            action = (
                "elided" if elide and self.all_divisions_proven else "kept"
            )
            lines.append(
                f"divisions: {self.divisions_proven}/{self.division_sites} "
                f"divisor(s) proven nonzero; zero-guards {action}"
            )
        if self.avg_guards:
            action = "elided" if elide else "kept"
            lines.append(
                f"avg guards: {self.avg_guards} group-count guard(s) "
                f"{action} (group count >= 1)"
            )
        if self.scalar_guards:
            lines.append(
                f"scalar guards: {self.scalar_guards} empty-input "
                f"guard(s) kept"
            )
        for pid, reason in self.dead_pipelines:
            lines.append(f"dead: p{pid} statically empty ({reason})")
        for pid, index in self.proven_filters:
            suffix = " (stripped)" if elide else ""
            lines.append(f"proven: p{pid} op[{index}] always true{suffix}")
        lines.extend(self.notes)
        return lines


# ---------------------------------------------------------------------------
# Abstract element states
# ---------------------------------------------------------------------------


class ElemState:
    """Abstract value of one stream element: scalar domain + field domains."""

    __slots__ = ("value", "fields", "stat_fields")

    def __init__(
        self,
        value: Interval = TOP,
        fields: Optional[Dict[str, "ElemState"]] = None,
        stat_fields: Optional[Dict[str, Interval]] = None,
    ):
        self.value = value
        self.fields: Dict[str, ElemState] = dict(fields or {})
        #: statistics-derived column bounds (divisor proofs only)
        self.stat_fields: Dict[str, Interval] = dict(stat_fields or {})

    def field(self, name: str) -> "ElemState":
        return self.fields.get(name, TOP_STATE)

    def copy(self) -> "ElemState":
        return ElemState(self.value, dict(self.fields), dict(self.stat_fields))


TOP_STATE = ElemState()


def _join_states(a: ElemState, b: ElemState) -> ElemState:
    fields = {
        name: _join_states(a.fields[name], b.fields[name])
        for name in set(a.fields) & set(b.fields)
    }
    return ElemState(a.value.join(b.value), fields)


# ---------------------------------------------------------------------------
# The analysis walk
# ---------------------------------------------------------------------------


class _Analysis:
    def __init__(
        self,
        ir: Any,
        param_values: Optional[Mapping[str, Any]],
        statistics: Optional[Mapping[str, Any]],
    ):
        self.ir = ir
        self.params = dict(param_values or {})
        self.statistics = dict(statistics or {})
        self.division_sites = 0
        self.divisions_proven = 0
        self.avg_guards = 0
        self.scalar_guards = 0
        self.dead: List[Tuple[int, str]] = []
        self.proven: List[Tuple[int, int]] = []
        self.notes: List[str] = []
        self.breaker_out: Dict[int, ElemState] = {}

    def run(self) -> DataflowFacts:
        for pipeline in self.ir.pipelines:
            self._pipeline(pipeline)
        return DataflowFacts(
            effects=plan_effects(self.ir.plan),
            division_sites=self.division_sites,
            divisions_proven=self.divisions_proven,
            avg_guards=self.avg_guards,
            scalar_guards=self.scalar_guards,
            dead_pipelines=tuple(self.dead),
            proven_filters=tuple(self.proven),
            notes=tuple(self.notes),
        )

    # -- per-pipeline walk -------------------------------------------------

    def _pipeline(self, pipeline: Any) -> None:
        if isinstance(pipeline.driver, Scan):
            state = self._seed_scan(pipeline.driver)
            seed_snapshot = {
                name: sub.value for name, sub in state.fields.items()
            }
        else:
            bid = getattr(pipeline.driver, "bid", None)
            state = self.breaker_out.get(bid, TOP_STATE)
            seed_snapshot = None
        prefix_safe = True
        dead_reason = None
        for index, op in enumerate(pipeline.operators):
            prefix_safe = prefix_safe and self._op_raising_free(op)
            state, contradiction = self._transfer(pipeline, index, op, state)
            if contradiction is not None:
                if prefix_safe:
                    dead_reason = contradiction
                    break
                self.notes.append(
                    f"p{pipeline.pid}: contradiction at op[{index}] not "
                    f"collapsed (raising expressions upstream)"
                )
        self._sink(pipeline, state)
        if dead_reason is not None:
            self.dead.append((pipeline.pid, dead_reason))
        elif seed_snapshot is not None:
            self._note_domains(pipeline, state, seed_snapshot)

    def _seed_scan(self, scan: Scan) -> ElemState:
        fields: Dict[str, ElemState] = {}
        token = scan.schema_token
        open_paren = token.find("(")
        if open_paren >= 0 and token.endswith(")"):
            for part in token[open_paren + 1 : -1].split(","):
                bits = part.split(":")
                if len(bits) == 3 and bits[0]:
                    domain = BOOL if bits[1] == "bool" else TOP
                    fields[bits[0]] = ElemState(value=domain)
        stat_fields: Dict[str, Interval] = {}
        stats = self.statistics.get(token)
        columns = getattr(stats, "columns", None)
        if isinstance(columns, dict):
            for name in sorted(columns):
                column = columns[name]
                lo = getattr(column, "minimum", None)
                hi = getattr(column, "maximum", None)
                if lo is not None and hi is not None:
                    stat_fields[name] = Interval(lo, hi)
        return ElemState(fields=fields, stat_fields=stat_fields)

    def _note_domains(
        self,
        pipeline: Any,
        state: ElemState,
        seed_snapshot: Dict[str, Interval],
    ) -> None:
        """Record filter-narrowed scan-field domains (explain output)."""
        narrowed = []
        for name in sorted(state.fields):
            domain = state.fields[name].value
            if domain != seed_snapshot.get(name, TOP) and not domain.is_top():
                narrowed.append(f"{name} in {domain.describe()}")
        if narrowed:
            self.notes.append(
                f"p{pipeline.pid} domain: " + ", ".join(narrowed)
            )

    # -- operator transfer functions ---------------------------------------

    def _transfer(
        self, pipeline: Any, index: int, op: Any, state: ElemState
    ) -> Tuple[ElemState, Optional[str]]:
        if isinstance(op, Filter):
            return self._transfer_filter(pipeline, index, op, state)
        if isinstance(op, Project):
            env = self._scan_lambda(op.selector, state)
            return self._eval(op.selector.body, env), None
        if isinstance(op, Join):
            breaker = self.ir.breaker_for(op)
            build = (
                self.breaker_out.get(breaker.bid, TOP_STATE)
                if breaker is not None
                else TOP_STATE
            )
            self._scan_lambda(op.left_key, state)
            if op.kind in ("semi", "anti"):
                # existence probes pass the probe element through unchanged
                return state, None
            if op.kind == "left":
                # unmatched probes see the default record: the build-side
                # state must absorb the default's abstract value
                build = _join_states(build, self._eval(op.default, {}))
            env = self._scan_lambda(op.result, state, build)
            return self._eval(op.result.body, env), None
        if isinstance(op, SetOp):
            # bag intersect/except emit a subset of probe elements verbatim
            return state, None
        if isinstance(op, FlatMap):
            self._scan_lambda(op.collection, state)
            if op.result is not None:
                env = self._scan_lambda(op.result, state, TOP_STATE)
                return self._eval(op.result.body, env), None
            return TOP_STATE, None
        if isinstance(op, Limit):
            for expr in (op.count, op.offset):
                if expr is not None:
                    self._scan_expr(expr, {})
            return state, None
        return TOP_STATE, None

    def _transfer_filter(
        self, pipeline: Any, index: int, op: Filter, state: ElemState
    ) -> Tuple[ElemState, Optional[str]]:
        # divisor proofs use the PRE-filter state (see module docstring)
        env = self._scan_lambda(op.predicate, state)
        param = op.predicate.params[0]
        all_true = True
        for conjunct in _split_conjuncts(op.predicate.body):
            verdict = self._eval_truth(conjunct, env)
            if verdict is False:
                return state, "filter conjunct is always false"
            if verdict is not True:
                all_true = False
            state = self._narrow(state, param, conjunct, env)
            empty_field = _first_empty(state)
            if empty_field is not None:
                return state, f"filter conjuncts contradict on {empty_field}"
            # later conjuncts see the narrowed element
            env = dict(env)
            env[param] = state
        if all_true and self._filter_safe(op.predicate):
            self.proven.append((pipeline.pid, index))
        return state, None

    # -- sinks --------------------------------------------------------------

    def _sink(self, pipeline: Any, state: ElemState) -> None:
        sink = pipeline.sink
        if sink is None:
            return
        node = sink.node
        if isinstance(node, Join):
            # build side: this pipeline's elements are the probe's right side
            self._scan_lambda(node.right_key, state)
            self._merge_breaker(sink.bid, state)
            return
        if isinstance(node, GroupAggregate):
            out = self._aggregate_output(node, state, grouped=True)
            self.avg_guards += sum(
                1 for spec in node.aggregates if spec.kind == "avg"
            )
            self._merge_breaker(sink.bid, out)
            return
        if isinstance(node, ScalarAggregate):
            out = self._aggregate_output(node, state, grouped=False)
            self.scalar_guards += sum(
                1
                for spec in node.aggregates
                if spec.kind in ("avg", "min", "max")
            )
            self._merge_breaker(sink.bid, out)
            return
        if isinstance(node, (Sort, TopN)):
            for key in node.keys:
                self._scan_lambda(key, state)
            if isinstance(node, TopN):
                self._scan_expr(node.count, {})
            self._merge_breaker(sink.bid, state)
            return
        if isinstance(node, GroupBy):
            self._scan_lambda(node.key, state)
            self._merge_breaker(sink.bid, TOP_STATE)
            return
        # distinct-materialize and anything unrecognized: pass through
        self._merge_breaker(sink.bid, state)

    def _aggregate_output(
        self, node: Any, state: ElemState, grouped: bool
    ) -> ElemState:
        env: Dict[str, ElemState] = {}
        if grouped:
            key_env = self._scan_lambda(node.key, state)
            env["__key"] = self._eval(node.key.body, key_env)
        for i, spec in enumerate(node.aggregates):
            env[f"__agg{i}"] = ElemState(
                value=self._agg_interval(spec, state, grouped)
            )
        self._scan_expr(node.output, env)
        return self._eval(node.output, env)

    def _agg_interval(
        self, spec: Any, state: ElemState, grouped: bool
    ) -> Interval:
        if spec.kind == "count":
            # a group exists only once an element arrived; a scalar count
            # over an empty input is 0
            return Interval(1, None) if grouped else Interval(0, None)
        if spec.selector is None:
            return TOP
        env = self._scan_lambda(spec.selector, state)
        selected = self._eval(spec.selector.body, env).value
        if spec.kind in ("min", "max"):
            return selected
        if spec.kind == "avg":
            # the mean stays inside the convex hull of the values, but a
            # mix of signs can average to zero
            return Interval(
                selected.lo, selected.hi, selected.lo_open, selected.hi_open
            )
        if spec.kind == "sum":
            if selected.lo is not None and selected.lo >= 0:
                return Interval(0, None)
            if selected.hi is not None and selected.hi <= 0:
                return Interval(None, 0)
        return TOP

    def _merge_breaker(self, bid: int, state: ElemState) -> None:
        existing = self.breaker_out.get(bid)
        self.breaker_out[bid] = (
            state if existing is None else _join_states(existing, state)
        )

    # -- raising-expression gates -------------------------------------------

    def _op_raising_free(self, op: Any) -> bool:
        return all(self._expr_raising_free(expr) for expr in self._op_exprs(op))

    def _op_exprs(self, op: Any):
        lambdas: Tuple[Optional[Lambda], ...] = ()
        if isinstance(op, Filter):
            lambdas = (op.predicate,)
        elif isinstance(op, Project):
            lambdas = (op.selector,)
        elif isinstance(op, Join):
            lambdas = (op.left_key, op.result)
        elif isinstance(op, FlatMap):
            lambdas = (op.collection, op.result)
        elif isinstance(op, Limit):
            for expr in (op.count, op.offset):
                if expr is not None:
                    yield expr
            return
        for lam in lambdas:
            if lam is None:
                continue
            yield lam.body
            for binding in self._bindings(lam):
                yield binding.expr

    @staticmethod
    def _expr_raising_free(expr: Expr) -> bool:
        return not any(
            (isinstance(node, Binary) and node.op in DIVISION_OPS)
            or isinstance(node, (Call, Method))
            for node in walk(expr)
        )

    def _filter_safe(self, predicate: Lambda) -> bool:
        if not self._expr_raising_free(predicate.body):
            return False
        return all(
            self._expr_raising_free(binding.expr)
            for binding in self._bindings(predicate)
        )

    def _bindings(self, lam: Lambda):
        return self.ir.bindings_for(lam)

    # -- division-site scanning ---------------------------------------------

    def _scan_lambda(
        self, lam: Optional[Lambda], *states: ElemState
    ) -> Dict[str, ElemState]:
        """Bind a lambda's params (and CSE bindings), scanning divisions."""
        if lam is None:
            return {}
        env: Dict[str, ElemState] = {}
        for name, state in zip(lam.params, states):
            env[name] = state
        for binding in self._bindings(lam):
            self._scan_expr(binding.expr, env)
            env[binding.name] = self._eval(binding.expr, env)
        self._scan_expr(lam.body, env)
        return env

    def _scan_expr(self, expr: Expr, env: Mapping[str, ElemState]) -> None:
        if isinstance(expr, Binary) and expr.op in DIVISION_OPS:
            self.division_sites += 1
            if self._proves_nonzero(expr.right, env):
                self.divisions_proven += 1
        if isinstance(expr, Lambda):
            inner = dict(env)
            for name in expr.params:
                inner[name] = TOP_STATE
            self._scan_expr(expr.body, inner)
            return
        for child in children(expr):
            self._scan_expr(child, env)

    def _proves_nonzero(
        self, divisor: Expr, env: Mapping[str, ElemState]
    ) -> bool:
        if not self._eval(divisor, env).value.contains_zero():
            return True
        # statistics oracle: an untouched scan column whose registered
        # bounds exclude zero
        if isinstance(divisor, Member) and isinstance(divisor.target, Var):
            state = env.get(divisor.target.name)
            if state is not None:
                bounds = state.stat_fields.get(divisor.name)
                if bounds is not None and not bounds.contains_zero():
                    return True
        return False

    # -- narrowing ----------------------------------------------------------

    def _narrow(
        self,
        state: ElemState,
        param: str,
        conjunct: Expr,
        env: Mapping[str, ElemState],
    ) -> ElemState:
        if isinstance(conjunct, Unary) and conjunct.op == "not":
            inner = conjunct.operand
            if isinstance(inner, Binary) and inner.op in _NEGATE:
                flipped = Binary(_NEGATE[inner.op], inner.left, inner.right)
                return self._narrow(state, param, flipped, env)
            return state
        if not isinstance(conjunct, Binary) or conjunct.op not in _FLIP:
            return state
        sides = (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, _FLIP[conjunct.op]),
        )
        for target, other, op in sides:
            value = self._numeric_value(other, env)
            if value is None:
                continue
            if (
                isinstance(target, Member)
                and target.target == Var(param)
            ):
                narrowed = state.copy()
                field = narrowed.fields.get(target.name, ElemState())
                narrowed.fields[target.name] = ElemState(
                    field.value.narrow(op, value), field.fields
                )
                return narrowed
            if isinstance(target, Var) and target.name == param:
                narrowed = state.copy()
                narrowed.value = narrowed.value.narrow(op, value)
                return narrowed
        return state

    def _numeric_value(
        self, expr: Expr, env: Mapping[str, ElemState]
    ) -> Optional[float]:
        value = self._eval(expr, env).value.is_point()
        return value if value is not None and is_numeric(value) else None

    # -- abstract evaluation ------------------------------------------------

    def _eval(self, expr: Expr, env: Mapping[str, ElemState]) -> ElemState:
        if isinstance(expr, Var):
            return env.get(expr.name, TOP_STATE)
        if isinstance(expr, Member):
            return self._eval(expr.target, env).field(expr.name)
        if isinstance(expr, Constant):
            if is_numeric(expr.value):
                return ElemState(value=point(expr.value))
            return TOP_STATE
        if isinstance(expr, Param):
            value = self.params.get(expr.name, _MISSING)
            if value is not _MISSING and is_numeric(value):
                return ElemState(value=point(value))
            return TOP_STATE
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, Unary):
            operand = self._eval(expr.operand, env).value
            if expr.op == "neg":
                return ElemState(value=neg_interval(operand))
            if expr.op == "pos":
                return ElemState(value=operand)
            if expr.op == "abs":
                return ElemState(value=abs_interval(operand))
            if expr.op == "not":
                truth = self._eval_truth(expr.operand, env)
                if truth is not None:
                    return ElemState(value=point(int(not truth)))
                return ElemState(value=BOOL)
            return TOP_STATE
        if isinstance(expr, Conditional):
            truth = self._eval_truth(expr.cond, env)
            then = self._eval(expr.then, env)
            other = self._eval(expr.other, env)
            if truth is True:
                return then
            if truth is False:
                return other
            return _join_states(then, other)
        if isinstance(expr, New):
            return ElemState(
                fields={
                    name: self._eval(value, env)
                    for name, value in expr.fields
                }
            )
        return TOP_STATE

    def _eval_binary(
        self, expr: Binary, env: Mapping[str, ElemState]
    ) -> ElemState:
        if expr.op in ("and", "or"):
            # Python and/or return an operand, not a bool — only the
            # truthiness is tracked (via _eval_truth); the value widens
            return TOP_STATE
        if expr.op in COMPARISON_OPS:
            left = self._eval(expr.left, env).value
            right = self._eval(expr.right, env).value
            verdict = interval_compare(left, expr.op, right)
            if verdict is not None:
                return ElemState(value=point(int(verdict)))
            return ElemState(value=BOOL)
        left = self._eval(expr.left, env).value
        right = self._eval(expr.right, env).value
        if expr.op == "add":
            return ElemState(value=add_intervals(left, right))
        if expr.op == "sub":
            return ElemState(value=sub_intervals(left, right))
        if expr.op == "mul":
            return ElemState(value=mul_intervals(left, right))
        # truediv / floordiv / mod / pow widen to top
        return TOP_STATE

    def _eval_truth(
        self, expr: Expr, env: Mapping[str, ElemState]
    ) -> Optional[bool]:
        if isinstance(expr, Binary) and expr.op == "and":
            left = self._eval_truth(expr.left, env)
            right = self._eval_truth(expr.right, env)
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if isinstance(expr, Binary) and expr.op == "or":
            left = self._eval_truth(expr.left, env)
            right = self._eval_truth(expr.right, env)
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if isinstance(expr, Unary) and expr.op == "not":
            truth = self._eval_truth(expr.operand, env)
            return None if truth is None else not truth
        domain = self._eval(expr, env).value
        value = domain.is_point()
        if value is not None:
            return bool(value)
        if not domain.contains_zero():
            return True
        return None


def _split_conjuncts(body: Expr) -> List[Expr]:
    if isinstance(body, Binary) and body.op == "and":
        return _split_conjuncts(body.left) + _split_conjuncts(body.right)
    return [body]


def _first_empty(state: ElemState) -> Optional[str]:
    if state.value.is_empty():
        return "<element>"
    for name in sorted(state.fields):
        if state.fields[name].value.is_empty():
            return name
    return None


def analyze_ir(
    ir: Any,
    param_values: Optional[Mapping[str, Any]] = None,
    statistics: Optional[Mapping[str, Any]] = None,
) -> DataflowFacts:
    """Derive :class:`DataflowFacts` for a lowered :class:`QueryIR`.

    Pure and deterministic: same IR + bindings + statistics → equal
    facts, which is what lets :func:`repro.codegen.verifier.verify_facts`
    re-derive them independently and compare.
    """
    return _Analysis(ir, param_values, statistics).run()
