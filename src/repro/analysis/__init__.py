"""Static analysis over the pipeline IR (see DESIGN.md §12).

The provider runs :func:`analyze_ir` once per query after lowering and
attaches the resulting :class:`DataflowFacts` to ``QueryIR.facts``;
backends key their guard elision off those facts, gated globally by
``REPRO_GUARD_ELISION`` (default on).
"""

from __future__ import annotations

import os

from .dataflow import DIVISION_OPS, DataflowFacts, analyze_ir
from .effects import (
    PURE,
    EffectReport,
    analyze_callable,
    expression_effects,
    merge_effects,
    plan_effects,
)

__all__ = [
    "DIVISION_OPS",
    "DataflowFacts",
    "EffectReport",
    "PURE",
    "analyze_callable",
    "analyze_ir",
    "elision_enabled",
    "expression_effects",
    "merge_effects",
    "plan_effects",
]


def elision_enabled() -> bool:
    """Whether proof-driven guard elision is on (``REPRO_GUARD_ELISION``)."""
    return os.environ.get("REPRO_GUARD_ELISION", "1") not in (
        "0",
        "false",
        "no",
    )
