"""Abstract value domains: a numeric interval lattice with zero exclusion.

The dataflow pass (:mod:`repro.analysis.dataflow`) tracks one
:class:`Interval` per record field.  Bounds are real numbers (``None``
means unbounded) with open/closed endpoints; ``nonzero`` records a
``!= 0`` fact that bounds alone cannot express (e.g. after
``r.qty != 0`` on an otherwise unbounded column).

Only ``int``/``float``/``bool`` values participate — comparisons against
dates or strings simply fail to narrow, which is always sound.  All
operations are conservative: when in doubt they widen to :data:`TOP`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["Interval", "TOP", "BOOL", "point", "interval_compare"]


def is_numeric(value: object) -> bool:
    """True for values the lattice can bound (bool counts as 0/1)."""
    return isinstance(value, (int, float)) and not isinstance(value, complex)


@dataclass(frozen=True)
class Interval:
    """A (possibly half-open, possibly unbounded) numeric interval."""

    lo: Optional[float] = None
    hi: Optional[float] = None
    lo_open: bool = False
    hi_open: bool = False
    #: proven to exclude zero even where the bounds admit it
    nonzero: bool = False

    # -- lattice queries ---------------------------------------------------

    def is_top(self) -> bool:
        return self.lo is None and self.hi is None and not self.nonzero

    def is_empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            if self.lo_open or self.hi_open:
                return True
            if self.nonzero and self.lo == 0:
                return True
        return False

    def is_point(self) -> Optional[float]:
        """The single value this interval holds, or None."""
        if (
            self.lo is not None
            and self.lo == self.hi
            and not self.lo_open
            and not self.hi_open
            and not self.is_empty()
        ):
            return self.lo
        return None

    def contains_zero(self) -> bool:
        if self.nonzero or self.is_empty():
            return False
        if self.lo is not None and (self.lo > 0 or (self.lo == 0 and self.lo_open)):
            return False
        if self.hi is not None and (self.hi < 0 or (self.hi == 0 and self.hi_open)):
            return False
        return True

    # -- narrowing through comparisons -------------------------------------

    def _with_lo(self, value: float, open_: bool) -> "Interval":
        if self.lo is None or value > self.lo:
            return replace(self, lo=value, lo_open=open_)
        if value == self.lo:
            return replace(self, lo_open=self.lo_open or open_)
        return self

    def _with_hi(self, value: float, open_: bool) -> "Interval":
        if self.hi is None or value < self.hi:
            return replace(self, hi=value, hi_open=open_)
        if value == self.hi:
            return replace(self, hi_open=self.hi_open or open_)
        return self

    def narrow(self, op: str, value: float) -> "Interval":
        """Meet with the half-space ``x <op> value``."""
        if not is_numeric(value):
            return self
        if op == "gt":
            return self._with_lo(value, True)
        if op == "ge":
            return self._with_lo(value, False)
        if op == "lt":
            return self._with_hi(value, True)
        if op == "le":
            return self._with_hi(value, False)
        if op == "eq":
            narrowed = self._with_lo(value, False)._with_hi(value, False)
            if value != 0:
                narrowed = replace(narrowed, nonzero=True)
            return narrowed
        if op == "ne" and value == 0:
            return replace(self, nonzero=True)
        return self

    def compare(self, op: str, value: float) -> Optional[bool]:
        """Decide ``x <op> value`` for every ``x`` in the interval.

        ``True``/``False`` when provable either way, ``None`` otherwise.
        """
        if not is_numeric(value):
            return None
        return interval_compare(self, op, point(value))

    # -- join (union hull) -------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        if self.lo is None or other.lo is None:
            lo, lo_open = None, False
        elif self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi is None or other.hi is None:
            hi, hi_open = None, False
        elif self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        nonzero = not self.contains_zero() and not other.contains_zero()
        return Interval(lo, hi, lo_open, hi_open, nonzero)

    # -- rendering ---------------------------------------------------------

    def describe(self) -> str:
        if self.is_top():
            return "(-inf, +inf)"
        if self.is_empty():
            return "empty"
        left = "(" if self.lo_open or self.lo is None else "["
        right = ")" if self.hi_open or self.hi is None else "]"
        lo = "-inf" if self.lo is None else _fmt(self.lo)
        hi = "+inf" if self.hi is None else _fmt(self.hi)
        text = f"{left}{lo}, {hi}{right}"
        if self.nonzero and self.contains_zero_by_bounds():
            text += " \\ {0}"
        return text

    def contains_zero_by_bounds(self) -> bool:
        return replace(self, nonzero=False).contains_zero()


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


TOP = Interval()
BOOL = Interval(0, 1)


def point(value: float) -> Interval:
    """The singleton interval for a known numeric value."""
    return Interval(value, value, nonzero=value != 0)


def interval_compare(a: Interval, op: str, b: Interval) -> Optional[bool]:
    """Decide ``x <op> y`` for all ``x`` in *a*, ``y`` in *b*."""
    if a.is_empty() or b.is_empty():
        return None

    def strictly_below(x: Interval, y: Interval) -> bool:
        # every value of x < every value of y
        if x.hi is None or y.lo is None:
            return False
        return x.hi < y.lo or (x.hi == y.lo and (x.hi_open or y.lo_open))

    def at_most(x: Interval, y: Interval) -> bool:
        # every value of x <= every value of y
        if x.hi is None or y.lo is None:
            return False
        return x.hi <= y.lo

    if op == "lt":
        if strictly_below(a, b):
            return True
        if at_most(b, a):
            return False
        return None
    if op == "le":
        if at_most(a, b):
            return True
        if strictly_below(b, a):
            return False
        return None
    if op == "gt":
        if strictly_below(b, a):
            return True
        if at_most(a, b):
            return False
        return None
    if op == "ge":
        if at_most(b, a):
            return True
        if strictly_below(a, b):
            return False
        return None
    if op == "eq":
        pa, pb = a.is_point(), b.is_point()
        if pa is not None and pb is not None:
            return pa == pb
        if strictly_below(a, b) or strictly_below(b, a):
            return False
        return None
    if op == "ne":
        result = interval_compare(a, "eq", b)
        return None if result is None else not result
    return None


# -- interval arithmetic (widening) ----------------------------------------


def add_intervals(a: Interval, b: Interval) -> Interval:
    lo = a.lo + b.lo if a.lo is not None and b.lo is not None else None
    hi = a.hi + b.hi if a.hi is not None and b.hi is not None else None
    return Interval(
        lo,
        hi,
        a.lo_open or b.lo_open if lo is not None else False,
        a.hi_open or b.hi_open if hi is not None else False,
    )


def neg_interval(a: Interval) -> Interval:
    return Interval(
        None if a.hi is None else -a.hi,
        None if a.lo is None else -a.lo,
        a.hi_open,
        a.lo_open,
        a.nonzero,
    )


def sub_intervals(a: Interval, b: Interval) -> Interval:
    return add_intervals(a, neg_interval(b))


def mul_intervals(a: Interval, b: Interval) -> Interval:
    if None in (a.lo, a.hi, b.lo, b.hi):
        # unbounded: only sign reasoning survives
        if _nonnegative(a) and _nonnegative(b):
            strict = not a.contains_zero() and not b.contains_zero()
            return Interval(0, None, lo_open=strict)
        return TOP
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    # endpoint openness is dropped — the closed hull is a superset
    return Interval(min(products), max(products))


def abs_interval(a: Interval) -> Interval:
    if a.lo is not None and a.lo >= 0:
        return a
    if a.hi is not None and a.hi <= 0:
        return neg_interval(a)
    bound = None
    if a.lo is not None and a.hi is not None:
        bound = max(abs(a.lo), abs(a.hi))
    return Interval(0, bound, nonzero=a.nonzero)


def _nonnegative(a: Interval) -> bool:
    return a.lo is not None and a.lo >= 0
