"""Lambda purity/effect analysis.

The paper assumes query lambdas are pure: the generated loops reorder,
fuse, parallelize and cache them freely.  Nothing in Python enforces
that, so this module inspects the *original* callables (before tracing
erases them into expression trees) and produces an :class:`EffectReport`
per lambda:

* **mutation** — ``STORE_GLOBAL``/``DELETE_GLOBAL`` bytecodes, writes to
  closure cells, or a captured mutable container (list/dict/set) combined
  with a mutating method name;
* **I/O** — references to ``print``/``open``/file-object methods;
* **nondeterminism** — references to ``random``/``time``/``uuid``/``id``
  style names whose value varies across calls.

The verdict is advisory metadata about *intent*: tracing bakes each
lambda's behaviour into a fixed expression tree, so the tree itself is
always deterministic.  The gates keyed off the verdict are therefore
conservative scheduling/caching decisions — an impure lambda hard-gates
:func:`repro.codegen.lower.decide_parallel` to sequential, and a
nondeterministic one makes the query inadmissible to the result
recycler — not semantic transformations.

Reports ride on :class:`repro.expressions.nodes.Lambda` in a
compare-excluded field, so structural equality, hashing and cache keys
are unaffected.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from typing import Any, Iterable, Optional, Tuple

from ..expressions.nodes import Expr, Lambda, walk
from ..plans.logical import Plan, plan_children

__all__ = [
    "EffectReport",
    "PURE",
    "analyze_callable",
    "merge_effects",
    "expression_effects",
    "plan_effects",
]

#: names whose mere reference marks a lambda nondeterministic
_NONDET_NAMES = frozenset(
    {
        "random", "randint", "randrange", "uniform", "gauss", "choice",
        "choices", "sample", "shuffle", "getrandbits", "secrets",
        "token_bytes", "token_hex", "urandom",
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "now", "today", "utcnow",
        "uuid1", "uuid4", "id",
    }
)

#: names whose reference marks a lambda as performing I/O
_IO_NAMES = frozenset(
    {
        "print", "open", "input", "write", "writelines", "flush",
        "readline", "readlines", "stdout", "stderr", "stdin", "urlopen",
        "connect", "send", "sendall", "recv",
    }
)

#: method names that mutate the container they are called on
_MUTATOR_NAMES = frozenset(
    {
        "append", "extend", "insert", "remove", "clear", "update", "add",
        "discard", "setdefault", "popitem", "sort", "reverse",
        "__setitem__", "__delitem__",
    }
)

_MUTABLE_TYPES = (list, dict, set, bytearray)


@dataclass(frozen=True)
class EffectReport:
    """Effect verdict for one user lambda (or a merge over several)."""

    nondeterministic: bool = False
    mutates: bool = False
    io: bool = False
    reasons: Tuple[str, ...] = ()

    @property
    def pure(self) -> bool:
        return not (self.nondeterministic or self.mutates or self.io)

    @property
    def impure(self) -> bool:
        """Side-effecting (mutation or I/O) — gates parallel execution."""
        return self.mutates or self.io

    def describe(self) -> str:
        if self.pure:
            return "pure"
        tags = [
            tag
            for flagged, tag in (
                (self.mutates, "mutating"),
                (self.io, "io"),
                (self.nondeterministic, "nondeterministic"),
            )
            if flagged
        ]
        head = "+".join(tags)
        if self.reasons:
            return f"{head} ({self.reasons[0]})"
        return head


PURE = EffectReport()


def analyze_callable(fn: Any) -> EffectReport:
    """Inspect a Python callable's code object for effects.

    Callables without a code object (builtins, already-traced
    :class:`Lambda` nodes) are reported pure.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return PURE
    nondeterministic = mutates = io = False
    reasons = []

    global_writes = []
    closure_writes = []
    for instruction in dis.get_instructions(code):
        if instruction.opname in ("STORE_GLOBAL", "DELETE_GLOBAL"):
            global_writes.append(str(instruction.argval))
        elif (
            instruction.opname == "STORE_DEREF"
            and instruction.argval in code.co_freevars
        ):
            closure_writes.append(str(instruction.argval))
    if global_writes:
        mutates = True
        reasons.append(f"writes global {global_writes[0]!r}")
    if closure_writes:
        mutates = True
        reasons.append(f"writes closed-over variable {closure_writes[0]!r}")

    names = set(code.co_names)
    mutator_hits = sorted(names & _MUTATOR_NAMES)
    if mutator_hits:
        closure = getattr(fn, "__closure__", None) or ()
        for var_name, cell in zip(code.co_freevars, closure):
            try:
                value = cell.cell_contents
            except ValueError:
                continue
            if isinstance(value, _MUTABLE_TYPES):
                mutates = True
                reasons.append(
                    f"captures mutable {type(value).__name__} "
                    f"{var_name!r} and calls {mutator_hits[0]!r}"
                )
                break

    io_hits = sorted(names & _IO_NAMES)
    if io_hits:
        io = True
        reasons.append(f"performs I/O via {io_hits[0]!r}")

    nondet_hits = sorted(names & _NONDET_NAMES)
    if nondet_hits:
        nondeterministic = True
        reasons.append(
            f"references nondeterministic name {nondet_hits[0]!r}"
        )

    if not (nondeterministic or mutates or io):
        return PURE
    return EffectReport(nondeterministic, mutates, io, tuple(reasons))


def merge_effects(
    reports: Iterable[Optional[EffectReport]],
) -> EffectReport:
    """Join several reports (missing reports count as pure)."""
    nondeterministic = mutates = io = False
    reasons = []
    for report in reports:
        if report is None:
            continue
        nondeterministic |= report.nondeterministic
        mutates |= report.mutates
        io |= report.io
        for reason in report.reasons:
            if reason not in reasons:
                reasons.append(reason)
    if not (nondeterministic or mutates or io):
        return PURE
    return EffectReport(nondeterministic, mutates, io, tuple(reasons))


def expression_effects(expr: Optional[Expr]) -> EffectReport:
    """Merged effects of every lambda inside *expr* (pre-order stable)."""
    if expr is None:
        return PURE
    return merge_effects(
        node.effects for node in walk(expr) if isinstance(node, Lambda)
    )


def _exprs_in(value: Any):
    if isinstance(value, Plan):
        return  # children are walked separately
    if isinstance(value, Expr):
        yield value
        return
    if isinstance(value, (tuple, list)):
        for item in value:
            yield from _exprs_in(item)
        return
    if is_dataclass(value) and not isinstance(value, type):
        for spec_field in dataclass_fields(value):
            yield from _exprs_in(getattr(value, spec_field.name))


def iter_plan_exprs(plan: Plan):
    """Yield every expression attached to *plan* or its descendants."""
    stack = [plan]
    while stack:
        node = stack.pop()
        stack.extend(plan_children(node))
        for plan_field in dataclass_fields(node):
            yield from _exprs_in(getattr(node, plan_field.name))


def plan_effects(plan: Plan) -> EffectReport:
    """Merged effects of every lambda anywhere in a logical plan."""
    return merge_effects(
        node.effects
        for expr in iter_plan_exprs(plan)
        for node in walk(expr)
        if isinstance(node, Lambda)
    )
