"""Serving queries: sessions, prepared statements, and deadlines.

Run with:  python examples/serving.py

The paper's application pattern (§1) is a fixed set of query shapes
re-executed with parameters chosen "via GUI elements".  The query cache
already makes re-compilation free; the serving layer removes the rest of
the per-request overhead and adds workload management:

* **ad-hoc**: every ``session.execute`` walks canonicalize →
  cache-lookup → execute (the lookup hits, but it still runs);
* **prepared**: ``session.prepare`` pays the whole Figure-3 pipeline
  once, and every ``bind(...).execute()`` jumps straight to the
  generated code — ``compile.<engine>.count`` moves exactly once;
* every execution passes through admission control and can carry a
  deadline that cancels it cooperatively.
"""

import time

from repro import P
from repro.observability.metrics import METRICS
from repro.query import QueryProvider, from_iterable
from repro.service import QueryService

ROWS = 40_000
THRESHOLDS = [100 * i for i in range(1, 21)]


class Reading:
    __slots__ = ("sensor", "value")

    def __init__(self, sensor, value):
        self.sensor = sensor
        self.value = value


def generate(n=ROWS):
    return [Reading(sensor=i % 50, value=(i * 7919) % 10_000) for i in range(n)]


def main() -> None:
    provider = QueryProvider()
    service = QueryService(provider=provider)
    readings = generate()

    def shape(session):
        return (
            session.query(readings)
            .where(lambda r: r.value > P("floor"))
            .select(lambda r: r.value)
        )

    # -- ad-hoc: one execute per parameter choice -----------------------------
    with service.session(engine="compiled") as session:
        compile_before = METRICS.counter("compile.compiled.count").value
        started = time.perf_counter()
        adhoc_rows = 0
        for floor in THRESHOLDS:
            adhoc_rows += len(
                session.execute(shape(session).with_params(floor=floor))
            )
        adhoc_seconds = time.perf_counter() - started
        stats = provider.cache.stats
        print(
            f"ad-hoc: {len(THRESHOLDS)} executions, {adhoc_rows} rows, "
            f"{adhoc_seconds * 1e3:.1f} ms"
        )
        print(
            f"  query cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.0%}) — "
            f"compilations: "
            f"{METRICS.counter('compile.compiled.count').value - compile_before}"
        )

    # -- prepared: compile once, bind many ------------------------------------
    with service.session(engine="compiled") as session:
        compile_before = METRICS.counter("compile.compiled.count").value
        statement = session.prepare(shape(session))
        started = time.perf_counter()
        prepared_rows = 0
        for floor in THRESHOLDS:
            prepared_rows += len(statement.bind(floor=floor).execute())
        prepared_seconds = time.perf_counter() - started
        compiles = METRICS.counter("compile.compiled.count").value - compile_before
        print(
            f"prepared: {len(THRESHOLDS)} executions, {prepared_rows} rows, "
            f"{prepared_seconds * 1e3:.1f} ms"
        )
        print(
            f"  compiled once: {compiles == 0} "
            "(the prepare itself reused the ad-hoc cache entry); "
            f"speedup vs ad-hoc {adhoc_seconds / prepared_seconds:.2f}x"
        )
        assert prepared_rows == adhoc_rows, "prepared must agree with ad-hoc"

    # -- deadlines: a query that exceeds its budget is cancelled ---------------
    with service.session(engine="linq") as session:
        doomed = (
            session.query(generate(200_000))
            .where(lambda r: r.value % 7 > 2)
            .select(lambda r: r.value)
        )
        from repro.errors import QueryTimeoutError

        started = time.perf_counter()
        try:
            session.execute(doomed, timeout=0.02)
            print("deadline: query finished inside its budget")
        except QueryTimeoutError:
            elapsed = time.perf_counter() - started
            print(
                f"deadline: QueryTimeoutError after {elapsed * 1e3:.1f} ms "
                "(budget was 20 ms)"
            )

    queue_wait = METRICS.histogram("service.queue_wait_seconds")
    print(
        f"admission: {METRICS.counter('service.admitted').value} admitted, "
        f"mean queue wait "
        f"{(queue_wait.sum / queue_wait.count if queue_wait.count else 0.0) * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
