"""Sales analytics: the paper's motivating application pattern.

Run with:  python examples/sales_analytics.py

§1 of the paper describes applications with "static schema definitions and
queries that are constructed from a limited number of predefined query
patterns and whose instances only vary in a few parameters ... based on
user interaction (e.g., via GUI elements)".  This example is that
application: a fixed set of dashboard queries, re-executed with different
GUI-chosen parameters.  The query cache compiles each pattern once; every
subsequent execution is a cache hit that only re-binds parameters.
"""

import datetime
import random
from dataclasses import dataclass

from repro import P, new
from repro.query import QueryProvider, from_iterable


@dataclass
class Sale:
    store: str
    product: str
    category: str
    quantity: int
    unit_price: float
    day: datetime.date


def generate_sales(n: int = 50_000, seed: int = 7) -> list:
    rng = random.Random(seed)
    stores = ["north", "south", "east", "west", "online"]
    catalog = [
        ("espresso", "beverage", 2.10),
        ("latte", "beverage", 3.40),
        ("bagel", "bakery", 1.90),
        ("croissant", "bakery", 2.30),
        ("sandwich", "deli", 5.80),
        ("salad", "deli", 6.40),
    ]
    start = datetime.date(2025, 1, 1)
    sales = []
    for _ in range(n):
        product, category, price = rng.choice(catalog)
        sales.append(
            Sale(
                store=rng.choice(stores),
                product=product,
                category=category,
                quantity=rng.randint(1, 5),
                unit_price=price,
                day=start + datetime.timedelta(days=rng.randint(0, 180)),
            )
        )
    return sales


def main() -> None:
    sales = generate_sales()
    provider = QueryProvider()  # one shared cache for the whole "app"
    source = from_iterable(sales, token="app:Sale").using("hybrid", provider)

    # pattern 1: revenue by store for a GUI-chosen date window
    revenue_by_store = source.where(
        lambda s: (s.day >= P("start")) & (s.day <= P("end"))
    ).group_by(
        lambda s: s.store,
        lambda g: new(
            store=g.key,
            revenue=g.sum(lambda s: s.quantity * s.unit_price),
            orders=g.count(),
        ),
    ).order_by_desc(lambda r: r.revenue)

    # pattern 2: top sellers within a category
    top_sellers = (
        source.where(lambda s: s.category == P("category"))
        .group_by(
            lambda s: s.product,
            lambda g: new(product=g.key, sold=g.sum(lambda s: s.quantity)),
        )
        .order_by_desc(lambda r: r.sold)
        .take(3)
    )

    # the "user" now clicks around the dashboard: each click re-runs a
    # pattern with new parameters — compilation happens once per pattern
    windows = [
        (datetime.date(2025, 1, 1), datetime.date(2025, 1, 31)),
        (datetime.date(2025, 2, 1), datetime.date(2025, 2, 28)),
        (datetime.date(2025, 3, 1), datetime.date(2025, 3, 31)),
    ]
    for start, end in windows:
        rows = revenue_by_store.with_params(start=start, end=end).to_list()
        best = rows[0]
        print(
            f"{start:%b %Y}: best store {best.store!r} "
            f"with ${best.revenue:,.2f} over {best.orders} sales"
        )

    for category in ("beverage", "bakery", "deli", "beverage"):
        rows = top_sellers.with_params(category=category).to_list()
        ranked = ", ".join(f"{r.product} ({r.sold})" for r in rows)
        print(f"top {category}: {ranked}")

    stats = provider.cache.stats
    print(
        f"\nquery cache: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}) — "
        f"two patterns compiled, seven clicks served"
    )


if __name__ == "__main__":
    main()
