"""Physical tuning: the §9 future-work features in action.

Run with:  python examples/physical_tuning.py

The paper's conclusion sketches what comes after query compilation:
indexes, statistics (histograms), and query result caching.  This example
exercises all three extensions on a TPC-H workload:

1. a **hash index** turns a point lookup from a scan into a gather;
2. **column statistics** reorder a filter so the selective conjunct runs
   first — visible in the EXPLAIN output;
3. the **result recycler** returns a repeated dashboard query without
   re-evaluating it.
"""

import time

from repro import P, new
from repro.plans import TableStats
from repro.query import QueryProvider, from_struct_array
from repro.query.recycler import RecyclingProvider
from repro.tpch import TPCHData, relation_query


def timed(label, fn, repeats=5):
    fn()  # warm up / compile
    started = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    elapsed = (time.perf_counter() - started) / repeats * 1e3
    print(f"  {label:42s} {elapsed:8.3f} ms")
    return result


def main() -> None:
    data = TPCHData(scale=0.01)
    lineitem = data.arrays("lineitem")
    print(f"lineitem: {len(lineitem):,} rows (struct array)")

    # -- 1. hash index ---------------------------------------------------------
    print("\n1) hash index on l_orderkey (point lookups):")
    provider = QueryProvider()

    def order_total():
        return (
            from_struct_array(lineitem)
            .using("native", provider)
            .where(lambda l: l.l_orderkey == P("key"))
            .with_params(key=4242)
            .sum(lambda l: l.l_extendedprice)
        )

    before = timed("full scan", order_total)
    lineitem.create_index("l_orderkey")
    after = timed("index lookup", order_total)
    assert abs(before - after) < 1e-6

    # -- 1b. clustering ----------------------------------------------------------
    print("\n1b) clustering on l_shipdate (range scans become slices):")
    import datetime

    clustered = lineitem.cluster_by("l_shipdate")
    cutoff = datetime.date(1994, 1, 1)

    def early_revenue(source):
        return (
            from_struct_array(source)
            .using("native", provider)
            .where(lambda l: l.l_shipdate < P("cutoff"))
            .with_params(cutoff=cutoff)
            .sum(lambda l: l.l_extendedprice)
        )

    unclustered = timed("unclustered (mask)", lambda: early_revenue(lineitem))
    on_cluster = timed("clustered (binary-search slice)", lambda: early_revenue(clustered))
    assert abs(unclustered - on_cluster) < 1.0

    # -- 2. statistics-driven predicate ordering ---------------------------------
    print("\n2) column statistics reorder predicates (selective first):")
    provider = QueryProvider()
    query = (
        relation_query(data, "lineitem", "compiled", provider)
        .where(
            lambda l: (l.l_quantity <= 49.0)      # keeps ~98% of rows
            & (l.l_linenumber == 7)                # keeps ~2% of rows
        )
    )
    print("  without statistics:", query.explain().splitlines()[0])
    provider.register_statistics("tpch:lineitem", TableStats.collect(lineitem))
    print("  with statistics:   ", provider.explain(query.expr, "compiled").splitlines()[0])

    # -- 3. result recycling -----------------------------------------------------
    print("\n3) result recycling for a repeated dashboard query:")
    recycler = RecyclingProvider()

    def dashboard():
        return (
            relation_query(data, "lineitem", "compiled", recycler)
            .where(lambda l: l.l_quantity > 25.0)
            .group_by(
                lambda l: l.l_returnflag,
                lambda g: new(flag=g.key, revenue=g.sum(lambda l: l.l_extendedprice)),
            )
            .to_list()
        )

    timed("first execution (evaluates + caches)", dashboard, repeats=1)
    timed("repeat execution (recycled)", dashboard)
    stats = recycler.recycler_stats
    print(f"  recycler: {stats.hits} hits, {stats.misses} misses")

    # mutation contract: in-place element updates are invisible to the
    # source fingerprint — invalidate explicitly afterwards
    rows = data.objects("lineitem")
    rows[0] = rows[0]._replace(l_quantity=50.0)
    dropped = recycler.invalidate(rows)
    print(f"  after invalidate(): {dropped} cached result(s) dropped")


if __name__ == "__main__":
    main()
