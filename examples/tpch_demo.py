"""TPC-H demo: the paper's evaluation workload end to end.

Run with:  python examples/tpch_demo.py [scale]

Generates a deterministic TPC-H dataset, runs Q1/Q2/Q3 on every engine,
verifies all engines agree, and prints per-engine wall-clock times — a
miniature of the paper's §7 evaluation.
"""

import sys
import time

from repro.query import QueryProvider
from repro.tpch import TPCHData, q1, q2, q3

ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")


def _digest(rows):
    return [tuple(row) for row in rows]


def _agrees(rows, reference) -> bool:
    """Equal modulo float summation order (page-wise vs single-pass)."""
    import math

    if len(rows) != len(reference):
        return False
    for row, expected in zip(rows, reference):
        for value, target in zip(row, expected):
            if isinstance(value, float):
                if not math.isclose(value, target, rel_tol=1e-6, abs_tol=1e-9):
                    return False
            elif value != target:
                return False
    return True


def run_query(name, builder, data, provider):
    print(f"\nTPC-H {name}")
    print(f"  {'engine':18s} {'time':>9s}  result")
    reference = None
    for engine in ENGINES:
        query = builder(data, engine, provider)
        started = time.perf_counter()
        rows = query.to_list()
        elapsed = time.perf_counter() - started
        digest = _digest(rows)
        if reference is None:
            reference = digest
            status = f"{len(rows)} rows"
        else:
            status = "agrees ✓" if _agrees(digest, reference) else "MISMATCH ✗"
        first = f"{digest[0][0]!r}, ..." if digest else "(empty)"
        print(f"  {engine:18s} {elapsed * 1e3:8.1f}ms  {status} [{first}]")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"generating TPC-H data at scale factor {scale} ...")
    data = TPCHData(scale=scale)
    print(
        "  "
        + ", ".join(
            f"{name}={data.row_count(name):,}"
            for name in ("customer", "orders", "lineitem")
        )
    )
    provider = QueryProvider()
    run_query("Q1 (aggregation)", q1, data, provider)
    run_query("Q2 (min-cost supplier)", q2, data, provider)
    run_query("Q3 (shipping priority)", q3, data, provider)


if __name__ == "__main__":
    main()
