"""Quickstart: query an in-memory collection through every engine.

Run with:  python examples/quickstart.py

Demonstrates the core workflow of the paper: wrap a plain Python
collection, write a LINQ-style query once, and execute it through the
interpreted baseline or any of the compiled strategies — same results,
very different machinery.
"""

from dataclasses import dataclass

from repro import P, new
from repro.query import from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray


@dataclass
class City:
    name: str
    country: str
    population: int
    area_km2: float


CITIES = [
    City("London", "UK", 9_000_000, 1_572.0),
    City("Paris", "FR", 2_100_000, 105.4),
    City("Berlin", "DE", 3_700_000, 891.7),
    City("Madrid", "ES", 3_300_000, 604.3),
    City("Rome", "IT", 2_800_000, 1_285.0),
    City("Lisbon", "PT", 500_000, 100.0),
    City("Munich", "DE", 1_500_000, 310.7),
    City("Milan", "IT", 1_400_000, 181.8),
]


def main() -> None:
    # -- 1. the LINQ-to-objects analogue: interpreted, operator at a time --
    crowded = (
        from_iterable(CITIES)
        .using("linq")
        .where(lambda c: c.population / c.area_km2 > 5000)
        .order_by_desc(lambda c: c.population)
        .select(lambda c: new(name=c.name, density=c.population / c.area_km2))
    )
    print("densest cities (interpreted baseline):")
    for row in crowded:
        print(f"  {row.name:8s} {row.density:10.0f} people/km²")

    # -- 2. the same query, compiled to a fused loop (paper §4) ------------
    compiled = crowded.using("compiled")
    assert compiled.to_list() == crowded.to_list()
    print("\ncompiled engine agrees with the baseline ✓")

    # -- 3. parameterized queries share one compiled artifact --------------
    by_country = (
        from_iterable(CITIES)
        .using("compiled")
        .where(lambda c: c.country == P("country"))
        .select(lambda c: c.name)
    )
    for country in ("DE", "IT", "DE"):  # third call is a pure cache hit
        print(f"{country}: {by_country.with_params(country=country).to_list()}")

    # -- 4. arrays of structs unlock the native engine (paper §5) ----------
    schema = Schema(
        [
            Field("name", "str", 16),
            Field("country", "str", 2),
            Field("population", "int"),
            Field("area_km2", "float"),
        ],
        name="City",
    )
    rows = StructArray.from_objects(schema, CITIES)
    total = (
        from_struct_array(rows)
        .where(lambda c: c.population > 1_000_000)
        .sum(lambda c: c.population)
    )
    print(f"\nnative engine: {total:,} people live in the big cities")

    # -- 5. aggregation with grouping, on the hybrid engine (paper §6) -----
    per_country = (
        from_iterable(CITIES)
        .using("hybrid")
        .group_by(
            lambda c: c.country,
            lambda g: new(
                country=g.key,
                cities=g.count(),
                people=g.sum(lambda c: c.population),
            ),
        )
        .order_by_desc(lambda r: r.people)
    )
    print("\npopulation by country (hybrid staging + vectorized kernels):")
    for row in per_country:
        print(f"  {row.country}: {row.people:>10,} in {row.cities} city(ies)")


if __name__ == "__main__":
    main()
