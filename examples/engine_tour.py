"""Engine tour: inspect what each strategy actually generates.

Run with:  python examples/engine_tour.py

For one query, prints the optimized logical plan and the source code each
code-generating engine produces — the artifacts Figures 3 and 4 of the
paper describe.  Useful for understanding (and debugging) the system.
"""

from dataclasses import dataclass

from repro import P, new
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray


@dataclass
class Reading:
    sensor: str
    zone: str
    value: float


READINGS = [
    Reading("s1", "north", 21.5),
    Reading("s2", "south", 19.0),
    Reading("s3", "north", 23.1),
    Reading("s4", "west", 18.4),
    Reading("s5", "north", 22.8),
    Reading("s6", "south", 20.2),
]

SCHEMA = Schema(
    [Field("sensor", "str", 4), Field("zone", "str", 8), Field("value", "float")],
    name="Reading",
)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    provider = QueryProvider()

    def build(query):
        return (
            query.where(lambda r: r.value > P("threshold"))
            .group_by(
                lambda r: r.zone,
                lambda g: new(zone=g.key, mean=g.avg(lambda r: r.value), n=g.count()),
            )
            .order_by_desc(lambda r: r.mean)
            .with_params(threshold=19.5)
        )

    object_query = build(from_iterable(READINGS, token="demo:Reading"))
    array_query = build(from_struct_array(StructArray.from_objects(SCHEMA, READINGS)))

    banner("optimized logical plan (shared by all code-generating engines)")
    print(object_query.explain())

    for engine, query in (
        ("compiled", object_query),
        ("native", array_query),
        ("hybrid", object_query),
        ("hybrid_buffered", object_query),
    ):
        info = provider.compile_info(query.expr, list(query.sources), engine)
        banner(
            f"engine {engine!r}: generated in {info.codegen_seconds * 1e3:.2f}ms, "
            f"compiled in {info.compile_seconds * 1e3:.2f}ms"
        )
        print(info.source_code)

    banner("results (all engines agree)")
    rows = object_query.using("compiled", provider).to_list()
    for row in rows:
        print(f"  {row.zone:6s} mean={row.mean:5.2f} from {row.n} readings")
    assert rows == array_query.using("native", provider).to_list()
    assert rows == object_query.using("hybrid", provider).to_list()


if __name__ == "__main__":
    main()
