"""Figure 7 — aggregation over selection, varying selectivity.

Paper: "all our approaches perform significantly better than
LINQ-to-objects; in the case of generated C code even up to one order of
magnitude better.  As the volume of data to be aggregated grows,
LINQ-to-objects looses ground even further."  Combined C#/C lands between
the host-only and native extremes (30–70% behind pure C).
"""

import statistics
import time

import pytest

from repro.tpch import aggregation_micro

from conftest import drain, write_report

ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")
SWEEP = tuple(round(0.1 * i, 1) for i in range(1, 11))
SPOT_SELECTIVITIES = (0.2, 0.6, 1.0)


@pytest.mark.parametrize("selectivity", SPOT_SELECTIVITIES)
@pytest.mark.parametrize("engine", ENGINES)
def test_fig07_aggregation(benchmark, data, provider, engine, selectivity):
    query = aggregation_micro(data, engine, selectivity, provider)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


def test_fig07_report(benchmark, data, provider, results_dir, bench_recorder):
    """One full selectivity sweep; writes results/fig07_aggregation.txt."""

    def sweep():
        lines = [
            "Figure 7: aggregation over selection; evaluation time (ms) by selectivity",
            "selectivity  " + "  ".join(f"{e:>16s}" for e in ENGINES),
        ]
        for selectivity in SWEEP:
            cells = []
            for engine in ENGINES:
                query = aggregation_micro(data, engine, selectivity, provider)
                drain(query)  # warm the query cache / compile once
                started = time.perf_counter()
                drain(query)
                ms = (time.perf_counter() - started) * 1e3
                cells.append(ms)
                bench_recorder.record("fig07_aggregation", engine, selectivity, ms)
            lines.append(
                f"{selectivity:>11.1f}  " + "  ".join(f"{c:>16.1f}" for c in cells)
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig07_aggregation", lines)


#: ablation cell: the same aggregation with proof-driven guard elision
#: enabled vs disabled (REPRO_GUARD_ELISION); linq rides along purely as
#: the in-run normalizer for the ratio-mode regression gate
_ELISION_SETTINGS = (("1", "fig07_elision_on"), ("0", "fig07_elision_off"))


def test_fig07_elision_report(
    benchmark, data, provider, results_dir, bench_recorder, monkeypatch
):
    """Guard-elision ablation sweep; writes results/fig07_elision.txt."""

    def sweep():
        lines = [
            "Figure 7 ablation: guard elision on/off; evaluation time (ms)",
            "setting      selectivity  "
            + "  ".join(f"{e:>16s}" for e in ENGINES),
        ]
        for setting, figure in _ELISION_SETTINGS:
            monkeypatch.setenv("REPRO_GUARD_ELISION", setting)
            label = "elision=on" if setting == "1" else "elision=off"
            for selectivity in SPOT_SELECTIVITIES:
                cells = []
                for engine in ENGINES:
                    query = aggregation_micro(data, engine, selectivity, provider)
                    drain(query)  # warm: compile under this elision setting
                    # sub-2ms cells at smoke scale: a single drain is all
                    # timer noise, so each cell is a median of five
                    times = []
                    for _ in range(5):
                        started = time.perf_counter()
                        drain(query)
                        times.append((time.perf_counter() - started) * 1e3)
                    ms = statistics.median(times)
                    cells.append(ms)
                    bench_recorder.record(figure, engine, selectivity, ms)
                lines.append(
                    f"{label:<11s}  {selectivity:>11.1f}  "
                    + "  ".join(f"{c:>16.1f}" for c in cells)
                )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig07_elision", lines)
