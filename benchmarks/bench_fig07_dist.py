"""Figure 7 companion — distributed workers vs the thread tier.

Not a figure from the paper: it measures this repo's sharded
multi-process tier (DESIGN.md §16) against morsel-driven thread
parallelism on the same Figure-7 aggregation.  Both legs run the native
engine with 4-way parallelism; the thread leg is GIL-bound on its
managed sections while the process leg shards the pinned snapshot
across worker processes.  Both legs are warmed first, so the dist leg's
numbers exclude pool spawn, artifact broadcast, and the initial shard
shipment — the steady state a resident pool actually serves.  The
interesting quantity is the thread/dist speedup, which
``scripts/check_bench_regression.py`` gates within-run (≥1.5×, skipped
below SF 0.05 or on single-core machines where process parallelism
cannot win).
"""

import os
import statistics
import time

import pytest

from repro.distributed import shutdown_pools
from repro.tpch import aggregation_micro

from conftest import drain, write_report

ENGINE = "native"
WORKERS = 4
SWEEP = (0.2, 0.6, 1.0)
ROUNDS = 5


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pools()


def _measure(data, provider, selectivity):
    """(thread_ms, dist_ms) medians for one selectivity."""
    query = aggregation_micro(data, ENGINE, selectivity, provider)
    threaded = query.in_parallel(WORKERS)
    dist = query.distributed(WORKERS)

    drain(threaded)  # warm: compile the morsel artifact
    thread_times = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        drain(threaded)
        thread_times.append((time.perf_counter() - started) * 1e3)

    drain(dist)  # warm: spawn pool, broadcast artifact, ship shards
    dist_times = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        drain(dist)
        dist_times.append((time.perf_counter() - started) * 1e3)

    return statistics.median(thread_times), statistics.median(dist_times)


@pytest.mark.parametrize("selectivity", (0.6,))
def test_fig07_dist(benchmark, data, provider, selectivity):
    """Spot timing: the distributed leg, pool and residency warm."""
    query = aggregation_micro(data, ENGINE, selectivity, provider).distributed(
        WORKERS
    )
    drain(query)
    benchmark.pedantic(drain, args=(query,), rounds=ROUNDS, iterations=1)


def test_fig07_dist_report(benchmark, data, provider, results_dir, bench_recorder):
    """Thread-vs-process sweep; writes results/fig07_dist.txt."""

    def sweep():
        lines = [
            f"Figure 7 companion: {WORKERS} worker processes vs {WORKERS} "
            f"threads ({ENGINE} engine); evaluation time (ms)",
            f"machine: {os.cpu_count()} cpu core(s) — process parallelism "
            "can only win with >= 2; single-core runs record the IPC "
            "overhead honestly and the CI gate skips",
            f"{'selectivity':>11s}  {'thread4':>10s}  {'dist4':>10s}  "
            f"{'speedup':>8s}",
        ]
        for selectivity in SWEEP:
            thread_ms, dist_ms = _measure(data, provider, selectivity)
            bench_recorder.record("fig07_dist", "thread4", selectivity, thread_ms)
            bench_recorder.record("fig07_dist", "dist4", selectivity, dist_ms)
            speedup = thread_ms / dist_ms if dist_ms else float("inf")
            lines.append(
                f"{selectivity:>11.1f}  {thread_ms:>10.2f}  {dist_ms:>10.2f}  "
                f"{speedup:>7.2f}x"
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig07_dist", lines)
