"""Table 1 — comparison to an in-memory DBMS.

Paper's table compares LINQ-to-objects and the compiled C#/C approach with
SQL Server 2014 (interpreted), SQL Server in-memory OLTP / Hekaton
(compiled stored procedures) and VectorWise 3.0 (vectorized).  The
commercial systems are replaced by the three executors of
:mod:`repro.relational` running *identical* plans:

=================  ======================================
paper system       stand-in
=================  ======================================
SQL Server 2014    VolcanoExecutor (tuple-at-a-time interp)
SQL Server native  CompiledExecutor (plan → fused loops)
VectorWise 3.0     VectorizedExecutor (column batches)
LINQ-to-objects    the ``linq`` engine
Compiled C#/C      the ``hybrid`` engine
=================  ======================================

Shape expectations: compilation gives the relational engine a multi-fold
improvement over interpretation (paper: ~3×); the vectorized engine is
competitive with compiled execution; and our compiled/hybrid engines are
comparable to (or better than) the relational stand-ins.
"""

import time

import pytest

from repro.relational import (
    CompiledExecutor,
    VectorizedExecutor,
    VolcanoExecutor,
    tpch_bundle,
)
from repro.tpch import q1, q2, q3

from conftest import drain, write_report

QUERIES = {"Q1": q1, "Q2": q2, "Q3": q3}
RELATIONAL = {
    "sqlserver_interp": VolcanoExecutor,
    "sqlserver_native": CompiledExecutor,
    "vectorwise": VectorizedExecutor,
}


@pytest.mark.parametrize("query_name", tuple(QUERIES))
@pytest.mark.parametrize("system", tuple(RELATIONAL))
def test_table1_relational(benchmark, data, system, query_name):
    bundle = tpch_bundle(data, query_name.lower())
    executor = RELATIONAL[system]()
    bundle.run(executor)  # warm any compiled-plan cache
    benchmark.pedantic(
        bundle.run, args=(executor,), rounds=3, iterations=1
    )


def test_table1_report(benchmark, data, provider, results_dir):
    def sweep():
        systems = list(RELATIONAL) + ["linq_to_objects", "compiled_hybrid"]
        lines = [
            "Table 1: performance comparison to an in-memory DBMS (ms)",
            "query  " + "  ".join(f"{s:>18s}" for s in systems),
        ]
        for name, builder in QUERIES.items():
            cells = []
            bundle = tpch_bundle(data, name.lower())
            for system, executor_type in RELATIONAL.items():
                executor = executor_type()
                bundle.run(executor)
                started = time.perf_counter()
                bundle.run(executor)
                cells.append((time.perf_counter() - started) * 1e3)
            for engine in ("linq", "hybrid"):
                query = builder(data, engine, provider)
                drain(query)
                started = time.perf_counter()
                drain(query)
                cells.append((time.perf_counter() - started) * 1e3)
            lines.append(
                f"{name:>5s}  " + "  ".join(f"{c:>18.1f}" for c in cells)
            )
        lines.append("")
        lines.append(
            "paper (SF-1): SQLServer 10360/125/2766, SQLServer-native 2875/-/797,"
        )
        lines.append(
            "              VectorWise 946/149/176, LINQ 4570/41/931, C#/C 567/21/208"
        )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "table1_dbms", lines)
