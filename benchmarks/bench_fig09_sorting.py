"""Figure 9 — sorting over selection, varying selectivity.

Paper: "LINQ-to-objects performs the worst, though it tracks the
performance of C# code much closer this time" (both run the same quicksort
in the managed runtime).  Generated C and the combined approach perform
similarly; the hybrid for sorting is the **Min** variant — it must return
references to the original elements, so only keys and indexes cross into
native memory.
"""

import time

import pytest

from repro.tpch import sorting_micro

from conftest import drain, write_report

#: the applicable strategies for a query returning original elements
ENGINES = ("linq", "compiled", "native", "hybrid_min")
SWEEP = tuple(round(0.1 * i, 1) for i in range(1, 11))


@pytest.mark.parametrize("selectivity", (0.2, 0.6, 1.0))
@pytest.mark.parametrize("engine", ENGINES)
def test_fig09_sorting(benchmark, data, provider, engine, selectivity):
    query = sorting_micro(data, engine, selectivity, provider)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


def test_fig09_report(benchmark, data, provider, results_dir):
    def sweep():
        lines = [
            "Figure 9: sorting over selection; evaluation time (ms) by selectivity",
            "selectivity  " + "  ".join(f"{e:>14s}" for e in ENGINES),
        ]
        for selectivity in SWEEP:
            cells = []
            for engine in ENGINES:
                query = sorting_micro(data, engine, selectivity, provider)
                drain(query)
                started = time.perf_counter()
                drain(query)
                cells.append((time.perf_counter() - started) * 1e3)
            lines.append(
                f"{selectivity:>11.1f}  " + "  ".join(f"{c:>14.1f}" for c in cells)
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig09_sorting", lines)
