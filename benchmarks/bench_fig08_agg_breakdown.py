"""Figure 8 — cost breakdown of the combined C#/C aggregation.

Paper: "The cost of iterating over the input and performing the selections
is independent of selectivity.  Whereas the data staging cost grows with
selectivity, it does not grow as fast as the aggregation cost."
"""

import pytest

from repro.profiling import aggregation_breakdown

from conftest import write_report

SWEEP = tuple(round(0.1 * i, 1) for i in range(1, 11))


@pytest.mark.parametrize("selectivity", (0.2, 0.6, 1.0))
def test_fig08_breakdown_point(benchmark, data, selectivity):
    lineitems = data.objects("lineitem")
    result = benchmark.pedantic(
        aggregation_breakdown,
        args=(lineitems, 50.0 * selectivity),
        rounds=3,
        iterations=1,
    )
    assert result.total > 0


def test_fig08_report(benchmark, data, results_dir):
    lineitems = data.objects("lineitem")

    def sweep():
        phases = ("iterate", "predicates", "staging", "aggregation", "return_result")
        lines = [
            "Figure 8: aggregation cost break down for compiled hybrid code (ms)",
            "selectivity  " + "  ".join(f"{p:>14s}" for p in phases),
        ]
        for selectivity in SWEEP:
            result = aggregation_breakdown(lineitems, 50.0 * selectivity)
            cells = [result.phases[p] * 1e3 for p in phases]
            lines.append(
                f"{selectivity:>11.1f}  " + "  ".join(f"{c:>14.2f}" for c in cells)
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig08_agg_breakdown", lines)
