"""Parallel scaling — morsel-driven execution, workers × morsel size.

Not a figure from the paper: the paper's runtimes are single-threaded.
This sweep measures the morsel-driven execution path added on top of the
paper's fig. 7 aggregation and fig. 11 join microbenchmarks: the source
relation is partitioned into fixed-size morsels, per-morsel kernels run on
a worker pool, and partial results merge through the streaming operators.

``workers=1`` is the plain sequential whole-array path; ``workers>=2``
switches to morselized kernels.  On a single-core host the win comes from
cache blocking — each morsel's columns stay resident across the kernel's
passes — rather than concurrency, and it grows with the working set, so
run a large scale (``REPRO_TPCH_SCALE=0.5``) to see the committed numbers.

The fig. 11 join is swept for parity: joins currently *fall back to
sequential* under ``in_parallel`` (a monolithic morsel kernel would
rebuild the build-side hash state once per morsel), so its rows confirm
the fallback costs nothing rather than showing a speedup.
"""

import time

import pytest

from repro.tpch import aggregation_micro, join_micro

from conftest import drain, write_report

WORKER_SWEEP = (1, 2, 4)
MORSEL_SWEEP = (32768, 65536, 262144)
SPOT_CONFIGS = ((1, None), (4, 65536))

WORKLOADS = (
    ("fig07 aggregation", aggregation_micro),
    ("fig11 join", join_micro),
)


@pytest.mark.parametrize("workers,morsel", SPOT_CONFIGS)
@pytest.mark.parametrize("name,micro", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_parallel_scaling(benchmark, data, provider, name, micro, workers, morsel):
    query = micro(data, "native", 1.0, provider).in_parallel(workers, morsel)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


def test_parallel_scaling_report(benchmark, data, provider, results_dir):
    """Workers × morsel-size sweep; writes results/parallel_scaling.txt."""

    def best_of(query, rounds=3):
        drain(query)  # warm: compile both sequential and morsel kernels
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            drain(query)
            best = min(best, time.perf_counter() - started)
        return best * 1e3

    def sweep():
        rows = data.row_count("lineitem")
        lines = [
            "Parallel scaling: morsel-driven execution, native engine;"
            " best-of-3 evaluation time (ms)",
            f"lineitem rows = {rows}",
            "workers=1 is the sequential whole-array path; the host is"
            " single-core, so the",
            "morsel-path speedup comes from cache blocking, not concurrency.",
            "fig11 join falls back to sequential under in_parallel (build"
            " side not yet",
            "shared across morsels); its rows verify the fallback is free.",
        ]
        for name, micro in WORKLOADS:
            lines.append("")
            lines.append(
                f"{name}:  workers  "
                + "  ".join(f"morsel={m:>7d}" for m in MORSEL_SWEEP)
            )
            baseline = None
            for workers in WORKER_SWEEP:
                cells = []
                for morsel in MORSEL_SWEEP:
                    query = micro(data, "native", 1.0, provider).in_parallel(
                        workers, morsel
                    )
                    cells.append(best_of(query))
                if workers == 1:
                    baseline = min(cells)
                lines.append(
                    f"{'':{len(name)}s}   {workers:>7d}  "
                    + "  ".join(f"{c:>14.1f}" for c in cells)
                )
            speedup = baseline / min(cells) if baseline else float("nan")
            lines.append(
                f"{'':{len(name)}s}   speedup at {WORKER_SWEEP[-1]} workers"
                f" vs 1 (best morsel): {speedup:.2f}x"
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "parallel_scaling", lines)
