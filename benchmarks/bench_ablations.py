"""Ablations — design choices DESIGN.md calls out, plus the §9 extensions.

Not a paper figure; these quantify the individual decisions:

* TopN fusion (bounded heap) vs full sort + take           (§2.3)
* buffer page size sensitivity for the buffered hybrid      (§7.1: "did
  not find any significant impact ... settled for 64KB")
* hash-index point lookups vs full scans                    (§9 indexes)
* statistics-driven predicate ordering vs cost heuristic    (§9 histograms)
* result recycling vs re-evaluation                          (§9 caching)
"""

import time

import pytest

from repro import P, new
from repro.plans import TableStats
from repro.plans.optimizer import OptimizeOptions
from repro.query import QueryProvider, from_struct_array
from repro.query.recycler import RecyclingProvider
from repro.tpch import relation_query

from conftest import drain, write_report


# -- TopN fusion -----------------------------------------------------------------


@pytest.mark.parametrize("fused", (True, False), ids=("topn_heap", "full_sort"))
def test_ablation_topn_fusion(benchmark, data, fused):
    provider = QueryProvider(optimize_options=OptimizeOptions(fuse_topn=fused))
    query = (
        relation_query(data, "lineitem", "compiled", provider)
        .order_by_desc(lambda l: l.l_extendedprice)
        .take(10)
        .select(lambda l: l.l_extendedprice)
    )
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


# -- buffer page size ------------------------------------------------------------


@pytest.mark.parametrize("page_kb", (4, 64, 1024))
def test_ablation_buffer_page_size(benchmark, data, page_kb):
    from repro.codegen.hybrid_backend import HybridBackend
    from repro.expressions.builder import trace_lambda
    from repro.expressions.canonical import canonicalize
    from repro.expressions.nodes import QueryOp
    from repro.plans import optimize, translate

    filtered = relation_query(data, "lineitem", "hybrid_buffered").where(
        lambda l: l.l_quantity <= 40.0
    )
    expr = QueryOp(
        "sum", filtered.expr, (trace_lambda(lambda l: l.l_extendedprice),)
    )
    canonical = canonicalize(expr)
    plan = optimize(translate(canonical.tree))
    backend = HybridBackend(buffered=True, page_bytes=page_kb * 1024)
    compiled = backend.compile(plan, list(filtered.sources))
    params = dict(canonical.bindings)

    def run():
        return compiled.execute(list(filtered.sources), params)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


# -- hash index ----------------------------------------------------------------------


@pytest.mark.parametrize("indexed", (False, True), ids=("scan", "index"))
def test_ablation_index_point_lookup(benchmark, data, indexed):

    array = data.arrays("orders")
    if indexed:
        array = type(array)(array.schema, array.data)  # fresh, own index store
        array.create_index("o_orderkey")
    provider = QueryProvider()
    query = (
        from_struct_array(array)
        .using("native", provider)
        .where(lambda o: o.o_orderkey == P("key"))
        .select(lambda o: o.o_totalprice)
        .with_params(key=42)
    )
    benchmark.pedantic(drain, args=(query,), rounds=5, iterations=5, warmup_rounds=1)


# -- statistics-driven predicate ordering ----------------------------------------------


@pytest.mark.parametrize("with_stats", (False, True), ids=("cost_order", "stats_order"))
def test_ablation_statistics_ordering(benchmark, data, with_stats):
    provider = QueryProvider()
    if with_stats:
        provider.register_statistics(
            "tpch:lineitem", TableStats.collect(data.arrays("lineitem"))
        )
    from repro.expressions.builder import trace_lambda
    from repro.expressions.nodes import QueryOp

    # written with the broad predicate first; statistics should flip it
    filtered = relation_query(data, "lineitem", "compiled", provider).where(
        lambda l: (l.l_quantity <= 49.0)                 # ~98% pass
        & (l.l_linenumber == 7)                           # ~2% pass
    )
    expr = QueryOp(
        "sum", filtered.expr, (trace_lambda(lambda l: l.l_extendedprice),)
    )
    sources = list(filtered.sources)

    def run():
        return provider.execute_scalar(expr, sources, "compiled", {})

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


# -- result recycling ----------------------------------------------------------------------


@pytest.mark.parametrize("recycled", (False, True), ids=("reevaluate", "recycle"))
def test_ablation_result_recycling(benchmark, data, recycled):
    provider = RecyclingProvider() if recycled else QueryProvider()
    query = (
        relation_query(data, "lineitem", "compiled", provider)
        .where(lambda l: l.l_quantity > 25.0)
        .group_by(
            lambda l: l.l_returnflag,
            lambda g: new(flag=g.key, revenue=g.sum(lambda l: l.l_extendedprice)),
        )
    )
    drain(query)  # compile (and, if recycling, populate the result cache)
    benchmark.pedantic(drain, args=(query,), rounds=5, iterations=1)


def test_ablations_report(benchmark, data, results_dir):
    def run():
        lines = ["Ablations (median of 3, ms)"]

        def best_of(fn, rounds=3):
            samples = []
            for _ in range(rounds):
                started = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - started)
            return sorted(samples)[len(samples) // 2] * 1e3

        # TopN fusion
        times = {}
        for fused in (True, False):
            provider = QueryProvider(
                optimize_options=OptimizeOptions(fuse_topn=fused)
            )
            query = (
                relation_query(data, "lineitem", "compiled", provider)
                .order_by_desc(lambda l: l.l_extendedprice)
                .take(10)
            )
            drain(query)
            times[fused] = best_of(lambda q=query: drain(q))
        lines.append(
            f"  order_by+take(10): heap {times[True]:.1f} vs "
            f"full sort {times[False]:.1f} "
            f"({times[False] / times[True]:.1f}× — §2.3 'Independent operators')"
        )

        # index
        array = data.arrays("lineitem")
        fresh = type(array)(array.schema, array.data)
        provider = QueryProvider()

        def point(source):
            return (
                from_struct_array(source)
                .using("native", provider)
                .where(lambda l: l.l_orderkey == P("key"))
                .with_params(key=42)
                .sum(lambda l: l.l_extendedprice)
            )

        point(fresh)
        scan_ms = best_of(lambda: point(fresh), rounds=5)
        fresh.create_index("l_orderkey")
        point(fresh)
        index_ms = best_of(lambda: point(fresh), rounds=5)
        lines.append(
            f"  point lookup on lineitem: scan {scan_ms:.3f} vs index "
            f"{index_ms:.3f} ({scan_ms / max(index_ms, 1e-9):.1f}×)"
        )

        # clustering
        array = data.arrays("lineitem")
        fresh = type(array)(array.schema, array.data)
        clustered = fresh.cluster_by("l_quantity")
        provider = QueryProvider()

        def range_sum(source):
            return (
                from_struct_array(source)
                .using("native", provider)
                .where(lambda l: l.l_quantity < P("q"))
                .with_params(q=10.0)
                .sum(lambda l: l.l_extendedprice)
            )

        range_sum(fresh)
        mask_ms = best_of(lambda: range_sum(fresh), rounds=5)
        range_sum(clustered)
        slice_ms = best_of(lambda: range_sum(clustered), rounds=5)
        lines.append(
            f"  range scan on lineitem: mask {mask_ms:.3f} vs clustered slice "
            f"{slice_ms:.3f} ({mask_ms / max(slice_ms, 1e-9):.1f}×)"
        )

        # recycling
        provider = RecyclingProvider()
        query = (
            relation_query(data, "lineitem", "compiled", provider)
            .where(lambda l: l.l_quantity > 25.0)
            .sum(lambda l: l.l_extendedprice)
        )
        # scalar executes eagerly; re-running hits the result cache
        cold = best_of(
            lambda: relation_query(data, "lineitem", "compiled", QueryProvider())
            .where(lambda l: l.l_quantity > 25.0)
            .sum(lambda l: l.l_extendedprice),
            rounds=3,
        )
        warm = best_of(
            lambda: relation_query(data, "lineitem", "compiled", provider)
            .where(lambda l: l.l_quantity > 25.0)
            .sum(lambda l: l.l_extendedprice),
            rounds=3,
        )
        lines.append(
            f"  repeated aggregate: evaluate {cold:.1f} vs recycle {warm:.2f} "
            f"({cold / max(warm, 1e-9):.0f}×)"
        )
        return lines

    lines = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(results_dir, "ablations", lines)
