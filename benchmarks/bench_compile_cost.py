"""§7.4 — code generation and compilation cost, and cache amortization.

Paper: "Source code generation takes between 30ms and 60ms; C# code
compilation needs around 75ms; and C code compilation takes around 720ms
... caching and reusing the compiled code" makes these one-off costs.
Our generation+``compile()`` costs are measured here, together with the
cache-hit fast path that amortizes them.
"""

import time

import pytest

from repro.query import QueryCache, QueryProvider
from repro.tpch import q1, q3

from conftest import write_report

CODEGEN_ENGINES = ("compiled", "native", "hybrid", "hybrid_buffered")


def _fresh_provider() -> QueryProvider:
    return QueryProvider(cache=QueryCache())


@pytest.mark.parametrize("engine", CODEGEN_ENGINES)
def test_compile_cost_q1(benchmark, data, engine):
    """Time one cold compile (canonicalize + translate + codegen + exec)."""

    def compile_cold():
        provider = _fresh_provider()
        query = q1(data, engine, provider)
        return provider.compile_info(query.expr, list(query.sources), engine)

    info = benchmark.pedantic(compile_cold, rounds=3, iterations=1)
    assert info.source_code


def test_cache_hit_fast_path(benchmark, data):
    """A cache hit must cost microseconds, not a recompilation."""
    provider = _fresh_provider()
    query = q1(data, "compiled", provider)
    provider.compile_info(query.expr, list(query.sources), "compiled")

    def lookup():
        return provider.compile_info(query.expr, list(query.sources), "compiled")

    benchmark.pedantic(lookup, rounds=5, iterations=10)
    assert provider.cache.stats.hits >= 50


def test_compile_cost_report(benchmark, data, results_dir):
    def run():
        lines = [
            "§7.4: per-engine code generation / compilation cost (TPC-H Q1, Q3)",
            f"{'engine':18s} {'query':>5s} {'codegen':>10s} {'compile':>10s} "
            f"{'cold total':>11s} {'cache hit':>10s}",
        ]
        for builder, name in ((q1, "Q1"), (q3, "Q3")):
            for engine in CODEGEN_ENGINES:
                provider = _fresh_provider()
                query = builder(data, engine, provider)
                started = time.perf_counter()
                info = provider.compile_info(query.expr, list(query.sources), engine)
                cold = time.perf_counter() - started
                started = time.perf_counter()
                provider.compile_info(query.expr, list(query.sources), engine)
                hit = time.perf_counter() - started
                lines.append(
                    f"{engine:18s} {name:>5s} "
                    f"{info.codegen_seconds * 1e3:>8.2f}ms "
                    f"{info.compile_seconds * 1e3:>8.2f}ms "
                    f"{cold * 1e3:>9.2f}ms {hit * 1e6:>8.1f}µs"
                )
        lines.append("")
        lines.append(
            "paper: codegen 30-60ms; C# compile ≈75ms; C compile ≈720ms — all"
        )
        lines.append(
            "amortized by the query cache across parameter-varying executions"
        )
        return lines

    lines = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(results_dir, "compile_cost", lines)
