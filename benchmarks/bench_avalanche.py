"""Query avalanches — the paper's Q2 footnote, §2.3 and [4, 9].

"Query Q2 contains a nested sub-query.  For LINQ-to-objects, we used a
hand-optimized query plan that eliminates the nested sub-query to prevent
LINQ-to-objects from re-evaluating it for every element and, hence, from
significantly increasing the evaluation time."

The avalanche is the classic N+1 pattern: the application evaluates one
sub-query per candidate element.  We reproduce both formulations of Q2's
core ("the cheapest regional supplier per candidate part"):

* **nested** — for each candidate part, issue a separate min-cost query
  (what naïve nested LINQ evaluates to);
* **decorrelated** — one grouped min-cost query joined against the
  candidates (the hand-optimized plan all our engines run for Q2).

The compiled engine's query cache makes each avalanche query cheap to
*compile* (one pattern, parameterized) but cannot fix the asymptotics —
that is exactly the paper's point: rewriting, not compilation, removes
avalanches.
"""

import time

import pytest

from repro import P, new
from repro.query import from_iterable
from repro.tpch import Q2_DEFAULTS, relation_query

from conftest import write_report


def _candidates(data):
    # Q2's type-suffix selection only (the size equality would leave a
    # handful of candidates at laptop scale and hide the N+1 asymptotics)
    suffix = Q2_DEFAULTS["type_suffix"]
    return [p for p in data.objects("part") if p.p_type.endswith(suffix)]


def _nested(data, engine, provider):
    """One min-cost sub-query per candidate part (the avalanche)."""
    partsupp = relation_query(data, "partsupp", engine, provider)
    results = []
    for part in _candidates(data):
        offers = partsupp.where(lambda ps: ps.ps_partkey == P("pk")).with_params(
            pk=part.p_partkey
        )
        if offers.any():
            results.append((part.p_partkey, offers.min(lambda ps: ps.ps_supplycost)))
    return results


def _decorrelated(data, engine, provider):
    """One grouped query + one join (the hand-optimized plan)."""
    partsupp = relation_query(data, "partsupp", engine, provider)
    min_costs = partsupp.group_by(
        lambda ps: ps.ps_partkey,
        lambda g: new(partkey=g.key, min_cost=g.min(lambda ps: ps.ps_supplycost)),
    )
    candidates = from_iterable(_candidates(data), token="tpch:part_cand").using(
        engine, provider
    )
    rows = candidates.join(
        min_costs,
        lambda p: p.p_partkey,
        lambda m: m.partkey,
        lambda p, m: new(partkey=p.p_partkey, min_cost=m.min_cost),
    ).to_list()
    return [(r.partkey, r.min_cost) for r in rows]


@pytest.mark.parametrize("engine", ("linq", "compiled"))
@pytest.mark.parametrize("shape", ("nested", "decorrelated"))
def test_avalanche(benchmark, data, provider, engine, shape):
    run = _nested if shape == "nested" else _decorrelated
    run(data, engine, provider)  # warm compile caches
    benchmark.pedantic(run, args=(data, engine, provider), rounds=3, iterations=1)


def test_avalanche_results_agree(data, provider):
    for engine in ("linq", "compiled"):
        nested = sorted(_nested(data, engine, provider))
        flat = sorted(_decorrelated(data, engine, provider))
        assert nested == [(k, round(c, 10)) for k, c in flat] or nested == flat


def test_avalanche_report(benchmark, data, provider, results_dir):
    def run():
        lines = [
            "Query avalanche (Q2's nested sub-query): per-element re-evaluation",
            f"candidate parts: {len(_candidates(data))}; "
            f"partsupp rows: {data.row_count('partsupp')}",
        ]
        for engine in ("linq", "compiled"):
            times = {}
            for shape, fn in (("nested", _nested), ("decorrelated", _decorrelated)):
                fn(data, engine, provider)
                started = time.perf_counter()
                fn(data, engine, provider)
                times[shape] = (time.perf_counter() - started) * 1e3
            ratio = times["nested"] / max(times["decorrelated"], 1e-9)
            lines.append(
                f"  {engine:9s}: nested {times['nested']:8.1f}ms vs "
                f"decorrelated {times['decorrelated']:8.1f}ms ({ratio:.0f}×)"
            )
        lines.append(
            "compilation caches the one sub-query pattern but cannot fix the"
        )
        lines.append(
            "N+1 asymptotics — only the decorrelating rewrite does (paper §7.4)"
        )
        return lines

    lines = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(results_dir, "avalanche", lines)
