"""Figure 12 — cost breakdown of hybrid join processing (Max variant).

Paper: "the join query does not block for the lineitem relation.  The C#
code continuously requests the next result.  The C code supplies it by
iterating over the unprocessed part of lineitem and probing the hash
tables for qualifying elements ... this cost accounts for the majority of
the evaluation time."
"""

import datetime

import pytest

from repro.profiling import join_breakdown
from repro.tpch import Q3_DEFAULTS

from conftest import write_report

SWEEP = tuple(round(0.1 * i, 1) for i in range(1, 11))

_DATE_LO = datetime.date(1992, 1, 1)
_DATE_HI = datetime.date(1998, 8, 2)


def _cutoff(selectivity: float) -> datetime.date:
    return _DATE_LO + datetime.timedelta(
        days=int((_DATE_HI - _DATE_LO).days * selectivity)
    )


def _run(data, selectivity: float):
    return join_breakdown(
        data.objects("lineitem"),
        data.objects("orders"),
        data.objects("customer"),
        qmax=50.0 * selectivity,
        order_cutoff=_cutoff(selectivity),
        segment=Q3_DEFAULTS["segment"],
    )


@pytest.mark.parametrize("selectivity", (0.2, 0.6, 1.0))
def test_fig12_breakdown_point(benchmark, data, selectivity):
    result = benchmark.pedantic(
        _run, args=(data, selectivity), rounds=3, iterations=1
    )
    assert result.total > 0


def test_fig12_report(benchmark, data, results_dir):
    def sweep():
        phases = (
            "iterate",
            "predicates",
            "staging",
            "build_hash_tables",
            "probe_and_return",
        )
        lines = [
            "Figure 12: cost break down of join processing, hybrid Max (ms)",
            "selectivity  " + "  ".join(f"{p:>18s}" for p in phases),
        ]
        for selectivity in SWEEP:
            result = _run(data, selectivity)
            cells = [result.phases[p] * 1e3 for p in phases]
            lines.append(
                f"{selectivity:>11.1f}  " + "  ".join(f"{c:>18.2f}" for c in cells)
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig12_join_breakdown", lines)
