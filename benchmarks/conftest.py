"""Shared fixtures for the benchmark harness.

Every figure/table of the paper's §7 has one ``bench_*.py`` file here.
Each file contains

* a handful of *parameterized* pytest-benchmark entries (statistically
  sound timings for representative points), and
* one ``..._report`` benchmark that runs the figure's full sweep once and
  writes the paper-style table to ``results/<figure>.txt`` (also printed).

Scale the workload with ``REPRO_TPCH_SCALE`` (default 0.003 ≈ 18k lineitem
rows, laptop-friendly; the shapes already show clearly there — use 0.01+
for slower, smoother curves).
"""

import json
import os
import pathlib

import pytest

from repro.observability.metrics import METRICS
from repro.query import QueryProvider
from repro.tpch import TPCHData

DEFAULT_SCALE = 0.003


def tpch_scale() -> float:
    return float(os.environ.get("REPRO_TPCH_SCALE", DEFAULT_SCALE))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write the report sweeps' cells to PATH as machine-readable JSON "
        "(consumed by scripts/check_bench_regression.py)",
    )


class BenchRecorder:
    """Collects (figure, engine, selectivity, ms) cells from report sweeps."""

    def __init__(self):
        self.cells = []

    def record(self, figure: str, engine: str, selectivity: float, ms: float) -> None:
        self.cells.append(
            {
                "figure": figure,
                "engine": engine,
                "selectivity": selectivity,
                "ms": round(ms, 4),
            }
        )


_RECORDER = BenchRecorder()


@pytest.fixture(scope="session")
def bench_recorder():
    return _RECORDER


def _phase_snapshot():
    """Per-engine codegen/compile phase times accumulated this session.

    The provider records ``compile.<engine>.codegen_seconds`` (emitting the
    module) and ``compile.<engine>.compile_seconds`` (the whole
    lower+generate+exec path) histograms; their means go into the bench
    JSON so ``scripts/check_bench_regression.py`` can gate compile-time
    regressions alongside execution time.
    """
    phases = {}
    for name, value in METRICS.snapshot().items():
        if not isinstance(value, dict):
            continue
        if name.endswith(".codegen_seconds") or name.endswith(".compile_seconds"):
            phases[name] = {
                "count": value["count"],
                "mean_ms": round(value["mean"] * 1e3, 4),
            }
    return phases


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    if not path or not _RECORDER.cells:
        return
    payload = {
        "scale": tpch_scale(),
        "cpus": os.cpu_count(),
        "cells": _RECORDER.cells,
        "phases": _phase_snapshot(),
    }
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def data():
    return TPCHData(scale=tpch_scale())


@pytest.fixture(scope="session")
def provider():
    return QueryProvider(cache=None)


@pytest.fixture(scope="session")
def results_dir():
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def write_report(results_dir, name: str, lines) -> None:
    """Print a figure table and persist it under results/."""
    text = "\n".join(lines)
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def drain(query) -> int:
    """Fully consume a query (deferred execution ⇒ this is the evaluation)."""
    count = 0
    for _ in query:
        count += 1
    return count
