"""Shared fixtures for the benchmark harness.

Every figure/table of the paper's §7 has one ``bench_*.py`` file here.
Each file contains

* a handful of *parameterized* pytest-benchmark entries (statistically
  sound timings for representative points), and
* one ``..._report`` benchmark that runs the figure's full sweep once and
  writes the paper-style table to ``results/<figure>.txt`` (also printed).

Scale the workload with ``REPRO_TPCH_SCALE`` (default 0.003 ≈ 18k lineitem
rows, laptop-friendly; the shapes already show clearly there — use 0.01+
for slower, smoother curves).
"""

import os
import pathlib

import pytest

from repro.query import QueryProvider
from repro.tpch import TPCHData

DEFAULT_SCALE = 0.003


def tpch_scale() -> float:
    return float(os.environ.get("REPRO_TPCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def data():
    return TPCHData(scale=tpch_scale())


@pytest.fixture(scope="session")
def provider():
    return QueryProvider(cache=None)


@pytest.fixture(scope="session")
def results_dir():
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def write_report(results_dir, name: str, lines) -> None:
    """Print a figure table and persist it under results/."""
    text = "\n".join(lines)
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def drain(query) -> int:
    """Fully consume a query (deferred execution ⇒ this is the evaluation)."""
    count = 0
    for _ in query:
        count += 1
    return count
