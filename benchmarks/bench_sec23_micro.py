"""§2.3 microbenchmarks — the inefficiencies that motivate the paper.

Three experiments from the introduction of the problem:

* **aggregation fusion** — "LINQ could process the aggregation 38% faster
  if it would process all aggregations in a single loop ... eliminating
  these duplicate computations improves performance by a further 12% ...
  collapsing the grouping and the aggregate computations in a single loop
  [gains] another 10%";
* **selection pushdown** — "forcing the selections of Q3 ... to be applied
  before the join ... results in a 35% performance improvement";
* **the language gap** — "the same quicksort implementation on the same
  data runs 58% faster in compiled C code over its C# counterpart"
  (ours compares interpreted CPython against NumPy's compiled quicksort,
  so the gap is wider — the *direction* is the claim).
"""

import random
import time

import numpy as np
import pytest

from repro.expressions.builder import new
from repro.plans.optimizer import OptimizeOptions
from repro.plans.translate import TranslateOptions
from repro.query import QueryProvider
from repro.runtime.sorting import argsort_indexes, quicksort_indexes
from repro.tpch import q1

from conftest import drain, write_report


# -- aggregation fusion ablation ----------------------------------------------


def _agg_provider(fuse: bool, share: bool) -> QueryProvider:
    return QueryProvider(
        translate_options=TranslateOptions(fuse_aggregates=fuse, share_aggregates=share)
    )

AGG_VARIANTS = {
    # per-aggregate loops over materialized groups (LINQ's behaviour)
    "per_aggregate_passes": _agg_provider(fuse=False, share=False),
    # single pass, but no common-subexpression sharing
    "fused_no_sharing": _agg_provider(fuse=True, share=False),
    # single pass + shared slots (the full §2.3 remedy)
    "fused_shared": _agg_provider(fuse=True, share=True),
}


@pytest.mark.parametrize("variant", tuple(AGG_VARIANTS))
def test_sec23_aggregation_fusion(benchmark, data, variant):
    provider = AGG_VARIANTS[variant]
    query = q1(data, "compiled", provider)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


# -- selection pushdown ablation ------------------------------------------------


def _join_then_filter_query(data, provider):
    """The Q3 joins with every selection written *after* the join."""
    from repro.tpch.queries import relation_query
    from repro.tpch import Q3_DEFAULTS
    from repro.expressions.builder import P

    customer = relation_query(data, "customer", "compiled", provider)
    orders = relation_query(data, "orders", "compiled", provider)
    lineitem = relation_query(data, "lineitem", "compiled", provider)
    joined = lineitem.join(
        orders.join(
            customer,
            lambda o: o.o_custkey,
            lambda c: c.c_custkey,
            lambda o, c: new(o=o, c=c),
        ),
        lambda l: l.l_orderkey,
        lambda oc: oc.o.o_orderkey,
        lambda l, oc: new(l=l, oc=oc),
    )
    return joined.where(
        lambda r: (r.l.l_shipdate > P("date"))
        & (r.oc.o.o_orderdate < P("date"))
        & (r.oc.c.c_mktsegment == P("segment"))
    ).select(
        lambda r: new(
            orderkey=r.l.l_orderkey,
            revenue=r.l.l_extendedprice * (1 - r.l.l_discount),
        )
    ).with_params(**Q3_DEFAULTS)


PUSHDOWN_VARIANTS = {
    "no_pushdown": QueryProvider(optimize_options=OptimizeOptions(pushdown=False)),
    "pushdown": QueryProvider(optimize_options=OptimizeOptions(pushdown=True)),
}


@pytest.mark.parametrize("variant", tuple(PUSHDOWN_VARIANTS))
def test_sec23_pushdown(benchmark, data, variant):
    provider = PUSHDOWN_VARIANTS[variant]
    query = _join_then_filter_query(data, provider)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


def test_sec23_pushdown_results_agree(data):
    rows = {}
    for variant, provider in PUSHDOWN_VARIANTS.items():
        rows[variant] = sorted(
            (r.orderkey, round(r.revenue, 2))
            for r in _join_then_filter_query(data, provider)
        )
    assert rows["no_pushdown"] == rows["pushdown"]


# -- quicksort language gap -----------------------------------------------------


def _sort_keys(n: int = 20_000):
    rng = random.Random(99)
    return [rng.random() for _ in range(n)]


@pytest.mark.parametrize("runtime", ("interpreted_python", "compiled_native"))
def test_sec23_quicksort_gap(benchmark, runtime):
    keys = _sort_keys()
    if runtime == "interpreted_python":
        benchmark.pedantic(
            quicksort_indexes, args=(keys,), rounds=3, iterations=1
        )
    else:
        arr = np.asarray(keys)
        benchmark.pedantic(argsort_indexes, args=(arr,), rounds=3, iterations=1)


# -- the summary report -----------------------------------------------------------


def test_sec23_report(benchmark, data, results_dir):
    def run():
        lines = ["§2.3 microbenchmarks (paper's motivating numbers in brackets)"]

        # aggregation fusion chain
        times = {}
        for variant, provider in AGG_VARIANTS.items():
            query = q1(data, "compiled", provider)
            drain(query)  # compile once
            samples = []
            for _ in range(3):
                started = time.perf_counter()
                drain(query)
                samples.append(time.perf_counter() - started)
            times[variant] = min(samples)
        base = times["per_aggregate_passes"]
        lines.append("aggregation fusion (compiled engine, Q1-style aggregation):")
        lines.append(f"  per-aggregate passes : {base * 1e3:8.1f}ms (baseline)")
        for variant, note in (
            ("fused_no_sharing", "[paper: one loop ≈ 38% + collapse ≈ 10%]"),
            ("fused_shared", "[paper: + shared computations ≈ 12%]"),
        ):
            gain = 100 * (1 - times[variant] / base)
            lines.append(
                f"  {variant:21s}: {times[variant] * 1e3:8.1f}ms "
                f"({gain:+.0f}% vs baseline) {note}"
            )

        # pushdown
        times = {}
        for variant, provider in PUSHDOWN_VARIANTS.items():
            query = _join_then_filter_query(data, provider)
            drain(query)  # compile once
            samples = []
            for _ in range(3):
                started = time.perf_counter()
                drain(query)
                samples.append(time.perf_counter() - started)
            times[variant] = min(samples)
        gain = 100 * (1 - times["pushdown"] / times["no_pushdown"])
        lines.append("selection pushdown (Q3 joins, selections written after):")
        lines.append(
            f"  without pushdown: {times['no_pushdown'] * 1e3:8.1f}ms;  with: "
            f"{times['pushdown'] * 1e3:8.1f}ms ({gain:+.0f}%) [paper: ≈ 35%]"
        )

        # quicksort gap
        keys = _sort_keys()
        started = time.perf_counter()
        quicksort_indexes(keys)
        interpreted = time.perf_counter() - started
        arr = np.asarray(keys)
        started = time.perf_counter()
        argsort_indexes(arr)
        compiled = time.perf_counter() - started
        lines.append("quicksort language gap (same algorithm, both runtimes):")
        lines.append(
            f"  interpreted {interpreted * 1e3:8.1f}ms vs native "
            f"{compiled * 1e3:8.2f}ms — native {interpreted / compiled:.0f}× "
            f"faster [paper: C 58% faster than C#; CPython's gap is wider]"
        )
        return lines

    lines = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(results_dir, "sec23_micro", lines)
