"""Figure 14 — last-level cache misses for TPC-H Q1–Q3 (simulated).

Hardware PMUs are unavailable from Python; misses come from the address-
trace model of :mod:`repro.profiling.memory_model` replayed through a
cache hierarchy scaled by the dataset's scale factor (preserving the SF-1
vs 3 MiB working-set ratios — see DESIGN.md).

Paper claims reproduced: every compiled variant misses less than
LINQ-to-objects; Q1 benefits most (the generated code avoids the
per-aggregate passes); generated C is lowest for Q1 and Q2; for the
join-heavy Q3, probing dominates and the hybrids' projected (smaller) hash
tables win once the join tables dwarf the LLC — reported here in a second,
probe-dominated regime table.
"""

import numpy as np
import pytest

from repro.profiling import (
    proportional_hierarchy,
    q1_trace,
    q2_trace,
    q3_trace,
    scaled_hierarchy,
)
from repro.storage.schema import date_to_days
from repro.tpch import Q1_DEFAULTS, Q3_DEFAULTS

from conftest import tpch_scale, write_report

ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")


def _q1_counts(data):
    lineitem = data.arrays("lineitem")
    cutoff = date_to_days(Q1_DEFAULTS["cutoff"])
    return {
        "n_input": len(lineitem),
        "n_selected": int((lineitem.column("l_shipdate") <= cutoff).sum()),
        "n_groups": 4,
        "n_aggregates": 8,
    }


def _q2_counts(data):
    partsupp = data.arrays("partsupp")
    supplier = data.arrays("supplier")
    part = data.arrays("part")
    nation = data.arrays("nation")
    region = data.arrays("region")
    europe = region.column("r_regionkey")[region.column("r_name") == b"EUROPE"]
    eu_nations = nation.column("n_nationkey")[
        np.isin(nation.column("n_regionkey"), europe)
    ]
    eu_suppliers = supplier.column("s_suppkey")[
        np.isin(supplier.column("s_nationkey"), eu_nations)
    ]
    regional = int(np.isin(partsupp.column("ps_suppkey"), eu_suppliers).sum())
    candidates = int(
        (
            (part.column("p_size") == 15)
            & np.char.endswith(part.column("p_type"), b"BRASS")
        ).sum()
    )
    return {
        "n_part": len(part),
        "n_partsupp": len(partsupp),
        "n_supplier": len(supplier),
        "n_regional_costs": regional,
        "n_candidates": max(1, candidates),
        "n_groups": max(1, regional // 2),
    }


def _q3_counts(data):
    lineitem = data.arrays("lineitem")
    orders = data.arrays("orders")
    customer = data.arrays("customer")
    date = date_to_days(Q3_DEFAULTS["date"])
    building = customer.column("c_custkey")[
        customer.column("c_mktsegment") == b"BUILDING"
    ]
    open_mask = (orders.column("o_orderdate") < date) & np.isin(
        orders.column("o_custkey"), building
    )
    open_keys = orders.column("o_orderkey")[open_mask]
    li_sel = lineitem.column("l_shipdate") > date
    matches = int(
        np.isin(lineitem.column("l_orderkey")[li_sel], open_keys).sum()
    )
    return {
        "n_lineitem": len(lineitem),
        "n_li_sel": int(li_sel.sum()),
        "n_orders": len(orders),
        "n_ord_sel": int(open_mask.sum()),
        "n_customer": len(customer),
        "n_cust_sel": len(building),
        "n_matches": matches,
        "n_groups": max(1, len(open_keys)),
    }


#: the SF-1-like regime where join tables dwarf the LLC (paper's Q3 text)
PROBE_DOMINATED_Q3 = {
    "n_lineitem": 50_000,
    "n_li_sel": 45_000,
    "n_orders": 12_000,
    "n_ord_sel": 9_000,
    "n_customer": 1_500,
    "n_cust_sel": 300,
    "n_matches": 8_000,
    "n_groups": 6_500,
}


def _misses(trace_fn, engine, counts, hierarchy_fn):
    cache = hierarchy_fn()
    cache.replay(trace_fn(engine, counts))
    return cache.llc_misses


@pytest.mark.parametrize("engine", ENGINES)
def test_fig14_q1_simulation(benchmark, data, engine):
    counts = _q1_counts(data)
    scale = tpch_scale()
    result = benchmark.pedantic(
        _misses,
        args=(q1_trace, engine, counts, lambda: proportional_hierarchy(scale)),
        rounds=1,
        iterations=1,
    )
    assert result > 0


def test_fig14_report(benchmark, data, results_dir):
    scale = tpch_scale()

    def simulate():
        tables = {
            "Q1": (q1_trace, _q1_counts(data)),
            "Q2": (q2_trace, _q2_counts(data)),
            "Q3": (q3_trace, _q3_counts(data)),
        }
        lines = [
            "Figure 14: simulated LLC misses as percentage of LINQ-to-objects",
            f"(cache hierarchy scaled by SF={scale}; see DESIGN.md)",
            "query  " + "  ".join(f"{e:>16s}" for e in ENGINES),
        ]
        for name, (trace_fn, counts) in tables.items():
            misses = {
                e: _misses(trace_fn, e, counts, lambda: proportional_hierarchy(scale))
                for e in ENGINES
            }
            base = misses["linq"]
            lines.append(
                f"{name:>5s}  "
                + "  ".join(f"{100 * misses[e] / base:>15.1f}%" for e in ENGINES)
            )
        lines.append("")
        lines.append("Q3 in the probe-dominated (SF-1-like join-table) regime:")
        misses = {
            e: _misses(q3_trace, e, PROBE_DOMINATED_Q3, scaled_hierarchy)
            for e in ENGINES
        }
        base = misses["linq"]
        lines.append(
            "   Q3  "
            + "  ".join(f"{100 * misses[e] / base:>15.1f}%" for e in ENGINES)
        )
        return lines

    lines = benchmark.pedantic(simulate, rounds=1, iterations=1)
    write_report(results_dir, "fig14_cache", lines)
