"""Figure 13 — TPC-H Q1, Q2, Q3: evaluation time relative to LINQ.

Paper: "The generated C code performs best, followed by the combination of
generated C# and C code.  The generated C# code comes third before
LINQ-to-objects.  As the queries contain more operations, LINQ-to-objects
... transfers more objects through the pipeline and materializes more
intermediate result objects, which gives our approaches an additional
advantage."
"""

import time

import pytest

from repro.tpch import q1, q2, q3, q4

from conftest import drain, write_report

ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")
# Q4 extends the paper's figure: the semi-join (EXISTS) probe exercises
# the join/set-operation surface the conformance suite proves
QUERIES = {"Q1": q1, "Q2": q2, "Q3": q3, "Q4": q4}


@pytest.mark.parametrize("query_name", tuple(QUERIES))
@pytest.mark.parametrize("engine", ENGINES)
def test_fig13_tpch(benchmark, data, provider, engine, query_name):
    query = QUERIES[query_name](data, engine, provider)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


def test_fig13_report(benchmark, data, provider, results_dir):
    def sweep():
        lines = [
            "Figure 13: TPC-H queries; evaluation time as percentage of LINQ-to-objects",
            "query  " + "  ".join(f"{e:>16s}" for e in ENGINES),
        ]
        absolute = ["(absolute ms)"]
        for name, builder in QUERIES.items():
            times = {}
            for engine in ENGINES:
                query = builder(data, engine, provider)
                drain(query)
                started = time.perf_counter()
                drain(query)
                times[engine] = time.perf_counter() - started
            base = times["linq"]
            lines.append(
                f"{name:>5s}  "
                + "  ".join(f"{100 * times[e] / base:>15.1f}%" for e in ENGINES)
            )
            absolute.append(
                f"{name:>5s}  "
                + "  ".join(f"{times[e] * 1e3:>15.1f} " for e in ENGINES)
            )
        return lines + absolute

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig13_tpch", lines)
