"""Figure 11 — join over selections, varying selectivity.

Paper: all four combined-C#/C variants (Min/Max × full/buffered) "perform
very similarly, with buffering performing slightly better and full-staging
marginally outperforming key/index joins"; the generated C code performs
best overall and generated C# beats LINQ-to-objects.
"""

import time

import pytest

from repro.tpch import join_micro

from conftest import drain, write_report

ENGINES = (
    "linq",
    "compiled",
    "native",
    "hybrid",            # Max, full staging
    "hybrid_buffered",   # Max, buffered
    "hybrid_min",        # Min, full staging
    "hybrid_min_buffered",
)
SWEEP = tuple(round(0.1 * i, 1) for i in range(1, 11))


@pytest.mark.parametrize("selectivity", (0.2, 0.6, 1.0))
@pytest.mark.parametrize("engine", ENGINES)
def test_fig11_joins(benchmark, data, provider, engine, selectivity):
    query = join_micro(data, engine, selectivity, provider)
    benchmark.pedantic(drain, args=(query,), rounds=3, iterations=1, warmup_rounds=1)


def test_fig11_report(benchmark, data, provider, results_dir, bench_recorder):
    def sweep():
        lines = [
            "Figure 11: join over selections; evaluation time (ms) by selectivity",
            "selectivity  " + "  ".join(f"{e:>19s}" for e in ENGINES),
        ]
        for selectivity in SWEEP:
            cells = []
            for engine in ENGINES:
                query = join_micro(data, engine, selectivity, provider)
                drain(query)
                started = time.perf_counter()
                drain(query)
                ms = (time.perf_counter() - started) * 1e3
                cells.append(ms)
                bench_recorder.record("fig11_joins", engine, selectivity, ms)
            lines.append(
                f"{selectivity:>11.1f}  " + "  ".join(f"{c:>19.1f}" for c in cells)
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig11_joins", lines)
