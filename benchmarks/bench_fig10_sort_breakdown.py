"""Figure 10 — cost breakdown of hybrid sorting.

Paper: "The cost of quicksort dominates.  As we only transfer the sort
keys and their indexes to C, the cost of data staging is smaller than that
of aggregation.  This is offset by the costs of repeatedly calling C and
composing the result in C#."
"""

import pytest

from repro.profiling import sort_breakdown

from conftest import write_report

SWEEP = tuple(round(0.1 * i, 1) for i in range(1, 11))


@pytest.mark.parametrize("selectivity", (0.2, 0.6, 1.0))
def test_fig10_breakdown_point(benchmark, data, selectivity):
    lineitems = data.objects("lineitem")
    result = benchmark.pedantic(
        sort_breakdown, args=(lineitems, 50.0 * selectivity), rounds=3, iterations=1
    )
    assert result.total > 0


def test_fig10_report(benchmark, data, results_dir):
    lineitems = data.objects("lineitem")

    def sweep():
        phases = ("iterate", "predicates", "staging", "quicksort", "return_result")
        lines = [
            "Figure 10: cost break down of sorting for compiled hybrid code (ms)",
            "selectivity  " + "  ".join(f"{p:>14s}" for p in phases),
        ]
        for selectivity in SWEEP:
            result = sort_breakdown(lineitems, 50.0 * selectivity)
            cells = [result.phases[p] * 1e3 for p in phases]
            lines.append(
                f"{selectivity:>11.1f}  " + "  ".join(f"{c:>14.2f}" for c in cells)
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig10_sort_breakdown", lines)
