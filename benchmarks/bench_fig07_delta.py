"""Figure 7 companion — delta recycling vs full re-execution on a growing source.

Not a figure from the paper: it measures this repo's versioned-storage
extension.  The Figure-7 aggregation runs once over lineitem through the
recycling provider; the source then grows by a small fraction and the
query re-executes.  The ``delta`` leg is that re-execution — the recycler
runs the already-compiled kernels over only the appended ``[old, new)``
window and merges the cached partial state — while the ``full`` leg is
the same re-execution without recycling: the whole grown relation,
compiled code already warm.  The recorded "selectivity" is the append
fraction; the interesting quantity is the full/delta speedup, which the
CI gate (``scripts/check_bench_regression.py``) checks within-run.
"""

import statistics
import time

import pytest

from repro import new
from repro.query import QueryProvider, RecyclingProvider, from_iterable
from repro.storage import StructArray

from conftest import drain, write_report

ENGINE = "compiled"
#: append fractions swept; recorded as the bench cell's "selectivity"
FRACTIONS = (0.01, 0.05)
ROUNDS = 3


def _aggregation(source, provider):
    """The Figure-7 shape (filter + grouped aggregates) over *source*."""
    return (
        from_iterable(source)
        .using(ENGINE, provider)
        .where(lambda l: l.l_quantity <= 40.0)
        .group_by(
            lambda l: new(rf=l.l_returnflag, ls=l.l_linestatus),
            lambda g: new(
                rf=g.key.rf,
                ls=g.key.ls,
                sum_qty=g.sum(lambda l: l.l_quantity),
                sum_disc_price=g.sum(
                    lambda l: l.l_extendedprice * (1 - l.l_discount)
                ),
                avg_qty=g.avg(lambda l: l.l_quantity),
                count_order=g.count(),
            ),
        )
    )


def _mutable_copy(source):
    return StructArray(source.schema, source.data.copy())


def _delta_rows(source, fraction):
    """An append batch: the first *fraction* of lineitem, re-encoded.

    Structured-array rows decompose into native value tuples that
    ``append_rows`` accepts directly (dates are already day counts,
    strings already fixed-width bytes).
    """
    count = max(1, int(len(source) * fraction))
    return [tuple(row) for row in source.data[:count]]


def _measure(data, fraction):
    """(full_ms, delta_ms) medians for one append fraction."""
    lineitem = data.arrays("lineitem")
    batch = _delta_rows(lineitem, fraction)

    # delta leg: warm the recycler on the base, then time re-executions
    # after each append — every timed drain covers exactly one batch
    arr = _mutable_copy(lineitem)
    recycling = RecyclingProvider()
    query = _aggregation(arr, recycling)
    drain(query)  # compile + cache the partial state
    delta_times = []
    for _ in range(ROUNDS):
        arr.append_rows(batch)
        started = time.perf_counter()
        drain(query)
        delta_times.append((time.perf_counter() - started) * 1e3)
    # honesty: the delta path must actually have engaged every round
    assert recycling.recycler_stats.delta_hits == ROUNDS

    # full leg: the grown relation, warm compiled code, no recycling
    grown = _mutable_copy(lineitem)
    grown.append_rows(batch)
    full_query = _aggregation(grown, QueryProvider())
    drain(full_query)  # warm the compile
    full_times = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        drain(full_query)
        full_times.append((time.perf_counter() - started) * 1e3)

    return statistics.median(full_times), statistics.median(delta_times)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig07_delta(benchmark, data, fraction):
    """Spot timing: one delta re-execution per round (fresh append each)."""
    lineitem = data.arrays("lineitem")
    arr = _mutable_copy(lineitem)
    batch = _delta_rows(lineitem, fraction)
    query = _aggregation(arr, RecyclingProvider())
    drain(query)

    def grow():
        arr.append_rows(batch)

    benchmark.pedantic(
        drain, args=(query,), setup=grow, rounds=ROUNDS, iterations=1
    )


def test_fig07_delta_report(benchmark, data, results_dir, bench_recorder):
    """Full/delta sweep over append fractions; writes results/fig07_delta.txt."""

    def sweep():
        lines = [
            "Figure 7 companion: delta recycling vs full re-run after growth "
            f"({ENGINE} engine); evaluation time (ms)",
            f"{'fraction':>9s}  {'rows':>9s}  {'append':>7s}  "
            f"{'full':>10s}  {'delta':>10s}  {'speedup':>8s}",
        ]
        rows = len(data.arrays("lineitem"))
        for fraction in FRACTIONS:
            full_ms, delta_ms = _measure(data, fraction)
            bench_recorder.record("fig07_delta", "full", fraction, full_ms)
            bench_recorder.record("fig07_delta", "delta", fraction, delta_ms)
            appended = max(1, int(rows * fraction))
            speedup = full_ms / delta_ms if delta_ms else float("inf")
            lines.append(
                f"{fraction:>9.2f}  {rows:>9d}  {appended:>7d}  "
                f"{full_ms:>10.2f}  {delta_ms:>10.2f}  {speedup:>7.1f}x"
            )
        return lines

    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(results_dir, "fig07_delta", lines)
