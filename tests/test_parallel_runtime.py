"""Determinism tests for the morsel-driven parallel merge edge cases.

Each case pins down one way a partial-result merge could diverge from
sequential execution: empty morsels, more morsels than rows, group keys
spanning morsel boundaries, sort and top-n ties, and the ``avg`` → ``sum``
+ ``count`` decomposition.  Every assertion is exact equality against the
sequential result of the same engine.
"""

import datetime

import pytest

from repro import new
from repro.errors import ExecutionError
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.query.provider import PARALLEL_ENGINES
from repro.runtime.parallel import (
    DEFAULT_MORSEL_ROWS,
    morsel_bounds,
    morsel_slice,
)
from repro.plans.translate import TranslateOptions
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema(
    [
        Field("id", "int"),
        Field("g", "int"),
        Field("v", "float"),
        Field("s", "str", 8),
        Field("d", "date"),
    ],
    name="Par",
)

PROVIDER = QueryProvider()


def _rows(n, key=lambda i: i % 3, word=lambda i: "aa"):
    epoch = datetime.date(2020, 1, 1)
    return [
        (
            i,
            key(i),
            (i % 7) * 0.25,
            word(i),
            epoch + datetime.timedelta(days=i % 11),
        )
        for i in range(n)
    ]


def _query_pair(rows, engine):
    array = StructArray.from_rows(SCHEMA, rows)
    if engine == "native":
        return from_struct_array(array).using(engine, PROVIDER)
    return from_iterable(array.to_objects(), schema=SCHEMA).using(
        engine, PROVIDER
    )


def _assert_identical(build, rows, configs=((2, 1), (3, 4), (4, 7), (5, None))):
    """build(query) runs on every parallel engine; every worker/morsel
    combination must reproduce that engine's sequential result exactly."""
    for engine in PARALLEL_ENGINES:
        base = _query_pair(rows, engine)
        try:
            sequential = build(base)
        except ExecutionError as sequential_error:
            for workers, morsel in configs:
                with pytest.raises(ExecutionError) as caught:
                    build(base.in_parallel(workers, morsel))
                assert str(caught.value) == str(sequential_error), engine
            continue
        if not isinstance(sequential, (int, float, str, datetime.date)):
            sequential = list(sequential)
        for workers, morsel in configs:
            parallel = build(base.in_parallel(workers, morsel))
            if not isinstance(parallel, (int, float, str, datetime.date)):
                parallel = list(parallel)
            assert parallel == sequential, (engine, workers, morsel)


# ---------------------------------------------------------------------------
# partitioning primitives
# ---------------------------------------------------------------------------


class TestMorselBounds:
    def test_exact_multiple(self):
        assert morsel_bounds(10, 5) == [(0, 5), (5, 10)]

    def test_straggler(self):
        assert morsel_bounds(11, 5) == [(0, 5), (5, 10), (10, 11)]

    def test_more_morsels_than_rows(self):
        assert morsel_bounds(3, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_single_covering_morsel(self):
        assert morsel_bounds(3, 1000) == [(0, 3)]

    def test_empty_source_still_yields_one_morsel(self):
        assert morsel_bounds(0, 64) == [(0, 0)]

    def test_non_positive_morsel_rejected(self):
        with pytest.raises(ExecutionError):
            morsel_bounds(10, 0)


class TestMorselSlice:
    def test_struct_array_slices_native_data(self):
        array = StructArray.from_rows(SCHEMA, _rows(10))
        part = morsel_slice(array, 2, 5)
        assert isinstance(part, StructArray)
        assert len(part) == 3
        assert list(part) == list(array)[2:5]

    def test_list_slices(self):
        assert morsel_slice([1, 2, 3, 4], 1, 3) == [2, 3]

    def test_unsliceable_iterable_falls_back_to_islice(self):
        class Bag:
            def __iter__(self):
                return iter(range(6))

        assert list(morsel_slice(Bag(), 2, 4)) == [2, 3]


# ---------------------------------------------------------------------------
# merge edge cases, engine × worker × morsel
# ---------------------------------------------------------------------------


class TestEmptyMorsels:
    def test_empty_source_rows(self):
        _assert_identical(
            lambda q: q.where(lambda r: r.g > 0).select(lambda r: r.id),
            [],
        )

    def test_empty_source_group(self):
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.g, lambda g: new(k=g.key, n=g.count())
            ),
            [],
        )

    def test_empty_source_count_and_sum(self):
        _assert_identical(lambda q: q.count(), [])
        _assert_identical(lambda q: q.sum(lambda r: r.v), [])

    def test_empty_source_min_raises_everywhere(self):
        # sequential raises "aggregate of an empty sequence has no value";
        # the parallel merge must re-raise it, not crash on _NO_VALUE
        _assert_identical(lambda q: q.min(lambda r: r.v), [])

    def test_filter_empties_some_morsels_only(self):
        # rows 0..9 survive; morsels past row 9 contribute nothing
        rows = _rows(50)
        _assert_identical(
            lambda q: q.where(lambda r: r.id < 10).max(lambda r: r.v), rows
        )
        _assert_identical(
            lambda q: q.where(lambda r: r.id < 10).select(lambda r: r.id),
            rows,
        )


class TestMorselCountExceedsRows:
    def test_morsel_size_one(self):
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.g, lambda g: new(k=g.key, t=g.sum(lambda r: r.v))
            ),
            _rows(9),
            configs=((4, 1),),
        )

    def test_workers_exceed_morsels(self):
        _assert_identical(
            lambda q: q.select(lambda r: r.id),
            _rows(3),
            configs=((8, 2), (8, 1000)),
        )


class TestGroupBoundaries:
    def test_keys_spanning_every_morsel(self):
        # key i % 3 recurs in every 7-row morsel: partial tables overlap
        # completely and must merge, not concatenate
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.g,
                lambda g: new(k=g.key, n=g.count(), t=g.sum(lambda r: r.v)),
            ),
            _rows(100),
        )

    def test_first_seen_order_with_late_new_key(self):
        # key 9 first appears at row 90: sequential first-seen order puts
        # it last, and the morsel-order merge must too
        rows = _rows(100, key=lambda i: 9 if i >= 90 else i % 3)
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.g, lambda g: new(k=g.key, n=g.count())
            ),
            rows,
        )

    def test_string_widths_varying_across_morsels(self):
        # first morsels only see 1-char keys; a later morsel introduces an
        # 8-char key — the merge dtype must widen, not truncate
        rows = _rows(60, word=lambda i: "widekey8" if i >= 40 else "a")
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.s, lambda g: new(k=g.key, n=g.count())
            ),
            rows,
            configs=((3, 10),),
        )

    def test_date_keys_and_aggregates(self):
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.d,
                lambda g: new(k=g.key, lo=g.min(lambda r: r.v)),
            ),
            _rows(50),
        )
        _assert_identical(lambda q: q.min(lambda r: r.d), _rows(50))


class TestOrderSensitivePostOps:
    def test_sort_ties_keep_sequential_order(self):
        # only three distinct sort keys over 80 rows: almost all ties
        _assert_identical(
            lambda q: q.select(lambda r: new(g=r.g, i=r.id)).order_by(
                lambda p: p.g
            ),
            _rows(80),
        )

    def test_topn_ties_cut_mid_run(self):
        # take(10) slices through a tie run; the heap's stable tiebreak
        # must match the managed merge's stable sort
        _assert_identical(
            lambda q: q.select(lambda r: new(g=r.g, i=r.id))
            .order_by(lambda p: p.g)
            .take(10),
            _rows(80),
        )

    def test_sort_desc_with_secondary_key(self):
        _assert_identical(
            lambda q: q.select(lambda r: new(g=r.g, v=r.v, i=r.id))
            .order_by_desc(lambda p: p.g)
            .then_by(lambda p: p.v),
            _rows(90),
        )

    def test_skip_and_take(self):
        _assert_identical(
            lambda q: q.select(lambda r: r.id).skip(13).take(20), _rows(60)
        )

    def test_distinct_first_occurrence(self):
        _assert_identical(
            lambda q: q.select(lambda r: new(g=r.g)).distinct(), _rows(40)
        )


class TestAvgDecomposition:
    def test_scalar_average_across_morsels(self):
        # per-morsel averages differ from the global average; only the
        # sum+count decomposition merges correctly
        _assert_identical(lambda q: q.average(lambda r: r.v), _rows(101))

    def test_group_avg_shares_count_slot(self):
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.g,
                lambda g: new(
                    k=g.key,
                    a=g.avg(lambda r: r.v),
                    n=g.count(),
                    t=g.sum(lambda r: r.v),
                ),
            ),
            _rows(100),
        )

    def test_avg_of_uneven_groups(self):
        rows = _rows(97, key=lambda i: 0 if i < 90 else 1)
        _assert_identical(
            lambda q: q.group_by(
                lambda r: r.g, lambda g: new(k=g.key, a=g.avg(lambda r: r.id))
            ),
            rows,
        )


class TestWorkerInvariance:
    def test_worker_sweep_identical(self):
        rows = _rows(120)
        results = []
        for engine in PARALLEL_ENGINES:
            base = _query_pair(rows, engine)
            def build(q):
                return list(
                    q.group_by(
                        lambda r: r.s, lambda g: new(k=g.key, t=g.sum(lambda r: r.v))
                    )
                )
            outcomes = [build(base)] + [
                build(base.in_parallel(w, 17)) for w in range(1, 6)
            ]
            assert all(o == outcomes[0] for o in outcomes), engine
            results.append(outcomes[0])


# ---------------------------------------------------------------------------
# fallback + routing behaviour
# ---------------------------------------------------------------------------


class TestFallbacks:
    def test_parallelism_one_is_sequential(self):
        provider = QueryProvider()
        q = from_iterable(
            StructArray.from_rows(SCHEMA, _rows(10)).to_objects(), schema=SCHEMA
        ).using("compiled", provider)
        explicit_one = list(q.in_parallel(1))
        # no morsel kernels were built for workers=1 (checked before the
        # plain query runs: REPRO_PARALLELISM may parallelize that one)
        assert len(provider._parallel_entries) == 0
        assert explicit_one == list(q)

    def test_linq_ignores_parallelism(self):
        q = from_iterable(
            StructArray.from_rows(SCHEMA, _rows(10)).to_objects(), schema=SCHEMA
        ).using("linq", PROVIDER)
        assert list(q.in_parallel(4, 3)) == list(q)

    def test_hybrid_min_runs_sequentially(self):
        rows = _rows(30)
        array = StructArray.from_rows(SCHEMA, rows)
        q = (
            from_iterable(array.to_objects(), schema=SCHEMA)
            .using("hybrid_min", PROVIDER)
            .order_by(lambda r: r.v)
        )
        assert list(q.in_parallel(4, 7)) == list(q)

    def test_join_falls_back_but_stays_correct(self):
        # joins are excluded from the morsel path (a monolithic kernel
        # would rebuild the build-side hash once per morsel); the parallel
        # API must still return exactly the sequential result
        provider = QueryProvider()
        left = _rows(50)
        right_schema = Schema(
            [Field("k", "int"), Field("w", "float")], name="ParRight"
        )
        right = StructArray.from_rows(
            right_schema, [(i % 4, i * 0.5) for i in range(12)]
        ).to_objects()
        q = (
            from_iterable(
                StructArray.from_rows(SCHEMA, left).to_objects(), schema=SCHEMA
            )
            .using("compiled", provider)
            .join(
                from_iterable(right, schema=right_schema),
                lambda r: r.g,
                lambda b: b.k,
                lambda r, b: new(i=r.id, w=b.w),
            )
        )
        sequential = [(row.i, row.w) for row in q]
        parallel = [(row.i, row.w) for row in q.in_parallel(4, 7)]
        assert parallel == sequential
        # the split refused the plan: only sequential-fallback markers,
        # never a built morsel artifact
        from repro.query.provider import _SEQUENTIAL

        assert provider._parallel_entries
        assert all(
            entry is _SEQUENTIAL
            for entry in provider._parallel_entries.values()
        )

    def test_unfused_group_falls_back_but_stays_correct(self):
        provider = QueryProvider(
            translate_options=TranslateOptions(fuse_aggregates=False)
        )
        rows = _rows(40)
        q = (
            from_iterable(
                StructArray.from_rows(SCHEMA, rows).to_objects(), schema=SCHEMA
            )
            .using("compiled", provider)
            .group_by(lambda r: r.g, lambda g: new(k=g.key, n=g.count()))
        )
        assert list(q.in_parallel(4, 7)) == list(q)

    def test_env_variable_routes_parallelism(self, monkeypatch):
        provider = QueryProvider()
        rows = _rows(50)
        q = (
            from_iterable(
                StructArray.from_rows(SCHEMA, rows).to_objects(), schema=SCHEMA
            )
            .using("compiled", provider)
            .select(lambda r: r.id)
        )
        monkeypatch.setenv("REPRO_PARALLELISM", "4")
        with_env = list(q)
        assert len(provider._parallel_entries) == 1  # morsel kernels built
        monkeypatch.delenv("REPRO_PARALLELISM")
        assert list(q) == with_env

    def test_explicit_parallelism_overrides_env(self, monkeypatch):
        provider = QueryProvider()
        rows = _rows(20)
        q = (
            from_iterable(
                StructArray.from_rows(SCHEMA, rows).to_objects(), schema=SCHEMA
            )
            .using("compiled", provider)
            .select(lambda r: r.id)
        )
        monkeypatch.setenv("REPRO_PARALLELISM", "4")
        assert list(q.in_parallel(1)) == list(range(20))
        assert len(provider._parallel_entries) == 0

    def test_default_morsel_size_is_cache_blocked(self):
        assert DEFAULT_MORSEL_ROWS == 65536

    def test_parallel_artifact_is_cached(self):
        provider = QueryProvider()
        rows = _rows(30)
        q = (
            from_iterable(
                StructArray.from_rows(SCHEMA, rows).to_objects(), schema=SCHEMA
            )
            .using("compiled", provider)
            .select(lambda r: r.v)
            .in_parallel(3, 7)
        )
        first = list(q)
        entries_after_first = len(provider._parallel_entries)
        assert list(q) == first
        assert len(provider._parallel_entries) == entries_after_first
