"""Tests for expression→plan translation and the heuristic optimizer."""

import pytest

from repro.errors import TranslationError
from repro.expressions import (
    Binary,
    Constant,
    Param,
    QueryOp,
    SourceExpr,
    Var,
    new,
    trace_lambda,
)
from repro.plans import (
    AggregateSpec,
    Distinct,
    Filter,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    OptimizeOptions,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
    TranslateOptions,
    optimize,
    plan_key,
    plan_to_text,
    translate,
)

SRC = SourceExpr(0, "Item")
SRC2 = SourceExpr(1, "Other")


def q(name, source, *args):
    return QueryOp(name, source, tuple(args))


def lam(fn):
    return trace_lambda(fn)


class TestTranslateBasics:
    def test_source_becomes_scan(self):
        assert translate(SRC) == Scan(0, "Item")

    def test_where(self):
        plan = translate(q("where", SRC, lam(lambda s: s.x > 1)))
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Scan)

    def test_select(self):
        plan = translate(q("select", SRC, lam(lambda s: s.x)))
        assert isinstance(plan, Project)

    def test_join(self):
        plan = translate(
            q(
                "join",
                SRC,
                SRC2,
                lam(lambda o: o.key),
                lam(lambda l: l.key),
                lam(lambda o, l: new(o=o, l=l)),
            )
        )
        assert isinstance(plan, Join)
        assert plan.left == Scan(0, "Item")
        assert plan.right == Scan(1, "Other")

    def test_take_skip(self):
        plan = translate(q("take", q("skip", SRC, Constant(5)), Constant(3)))
        assert isinstance(plan, Limit) and plan.count == Constant(3)
        assert isinstance(plan.child, Limit) and plan.child.offset == Constant(5)

    def test_distinct(self):
        assert isinstance(translate(q("distinct", SRC)), Distinct)

    def test_non_lambda_argument_rejected(self):
        with pytest.raises(TranslationError, match="expected a lambda"):
            translate(q("where", SRC, Constant(True)))

    def test_wrong_arity_lambda_rejected(self):
        with pytest.raises(TranslationError, match="1-ary"):
            translate(q("where", SRC, lam(lambda a, b: a == b)))

    def test_unknown_root_rejected(self):
        with pytest.raises(TranslationError, match="expected a query expression"):
            translate(Constant(3))


class TestSortTranslation:
    def test_order_by(self):
        plan = translate(q("order_by", SRC, lam(lambda s: s.x)))
        assert isinstance(plan, Sort)
        assert plan.descending == (False,)

    def test_order_by_desc_then_by(self):
        plan = translate(
            q(
                "then_by",
                q("order_by_desc", SRC, lam(lambda s: s.x)),
                lam(lambda s: s.y),
            )
        )
        assert isinstance(plan, Sort)
        assert len(plan.keys) == 2
        assert plan.descending == (True, False)
        assert isinstance(plan.child, Scan)  # keys merged, no nested Sort

    def test_then_by_requires_order_by(self):
        with pytest.raises(TranslationError, match="then_by"):
            translate(q("then_by", SRC, lam(lambda s: s.x)))


class TestAggregateTranslation:
    def _grouped_select(self, selector):
        return q("select", q("group_by", SRC, lam(lambda s: s.k)), lam(selector))

    def test_group_select_fuses(self):
        plan = translate(
            self._grouped_select(lambda g: new(k=g.key, t=g.sum(lambda s: s.v)))
        )
        assert isinstance(plan, GroupAggregate)
        assert [a.kind for a in plan.aggregates] == ["sum"]
        assert plan.fused

    def test_output_references_key_and_slots(self):
        plan = translate(
            self._grouped_select(lambda g: new(k=g.key, t=g.sum(lambda s: s.v)))
        )
        fields = dict(plan.output.fields)
        assert fields["k"] == Var("__key")
        assert fields["t"] == Var("__agg0")

    def test_shared_aggregates_deduplicate(self):
        plan = translate(
            self._grouped_select(
                lambda g: new(a=g.sum(lambda s: s.v), b=g.sum(lambda s: s.v))
            )
        )
        assert len(plan.aggregates) == 1
        fields = dict(plan.output.fields)
        assert fields["a"] == fields["b"] == Var("__agg0")

    def test_sharing_can_be_disabled(self):
        opts = TranslateOptions(share_aggregates=False)
        plan = translate(
            self._grouped_select(
                lambda g: new(a=g.sum(lambda s: s.v), b=g.sum(lambda s: s.v))
            ),
            opts,
        )
        assert len(plan.aggregates) == 2

    def test_fusion_can_be_disabled(self):
        opts = TranslateOptions(fuse_aggregates=False)
        plan = translate(
            self._grouped_select(lambda g: new(t=g.sum(lambda s: s.v))), opts
        )
        assert isinstance(plan, Project)
        assert isinstance(plan.child, GroupBy)

    def test_group_by_with_result_selector(self):
        plan = translate(
            q(
                "group_by",
                SRC,
                lam(lambda s: s.k),
                lam(lambda g: new(k=g.key, n=g.count())),
            )
        )
        assert isinstance(plan, GroupAggregate)
        assert plan.aggregates == (AggregateSpec("count", None),)

    def test_bare_group_by(self):
        plan = translate(q("group_by", SRC, lam(lambda s: s.k)))
        assert isinstance(plan, GroupBy)

    def test_group_var_misuse_rejected(self):
        with pytest.raises(TranslationError, match="group itself"):
            translate(self._grouped_select(lambda g: new(g=g, n=g.count())))

    def test_aggregate_outside_group_rejected(self):
        with pytest.raises(TranslationError, match="only valid in selectors"):
            translate(q("select", SRC, lam(lambda g: new(n=g.count()))))

    def test_terminal_count(self):
        plan = translate(q("count", SRC))
        assert isinstance(plan, ScalarAggregate)
        assert plan.aggregates[0].kind == "count"

    def test_terminal_count_with_predicate_inserts_filter(self):
        plan = translate(q("count", SRC, lam(lambda s: s.x > 0)))
        assert isinstance(plan.child, Filter)

    def test_terminal_sum_with_selector(self):
        plan = translate(q("sum", SRC, lam(lambda s: s.v)))
        assert plan.aggregates[0].kind == "sum"

    def test_terminal_average_without_selector(self):
        plan = translate(q("average", SRC))
        assert plan.aggregates[0].kind == "avg"


class TestOptimizerTopN:
    def test_sort_take_fuses(self):
        expr = q("take", q("order_by", SRC, lam(lambda s: s.x)), Constant(10))
        plan = optimize(translate(expr))
        assert isinstance(plan, TopN)
        assert plan.count == Constant(10)

    def test_fusion_disabled(self):
        expr = q("take", q("order_by", SRC, lam(lambda s: s.x)), Constant(10))
        plan = optimize(translate(expr), OptimizeOptions(fuse_topn=False))
        assert isinstance(plan, Limit)

    def test_skip_blocks_fusion(self):
        expr = q(
            "take",
            q("skip", q("order_by", SRC, lam(lambda s: s.x)), Constant(1)),
            Constant(10),
        )
        plan = optimize(translate(expr))
        assert isinstance(plan, Limit)


class TestOptimizerFilters:
    def test_adjacent_filters_fuse(self):
        expr = q(
            "where", q("where", SRC, lam(lambda s: s.x > 1)), lam(lambda s: s.y < 2)
        )
        plan = optimize(translate(expr))
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Scan)
        assert plan.predicate.body.op == "and"

    def test_predicate_reordering_puts_cheap_first(self):
        # string comparison is pricier than the numeric one
        expr = q(
            "where",
            SRC,
            lam(lambda s: (s.name == "London") & (s.x > 1)),
        )
        plan = optimize(translate(expr))
        first_conjunct = plan.predicate.body.left
        assert isinstance(first_conjunct, Binary)
        assert first_conjunct.op == "gt"

    def test_reordering_disabled_preserves_order(self):
        expr = q("where", SRC, lam(lambda s: (s.name == "London") & (s.x > 1)))
        plan = optimize(translate(expr), OptimizeOptions(reorder_predicates=False))
        assert plan.predicate.body.left.op == "eq"


class TestOptimizerPushdown:
    def _join_then_filter(self):
        join = q(
            "join",
            SRC,
            SRC2,
            lam(lambda o: o.key),
            lam(lambda l: l.key),
            lam(lambda o, l: new(o=o, l=l)),
        )
        return q(
            "where",
            join,
            lam(lambda r: (r.o.total > 10) & (r.l.qty < 5) & (r.o.total > r.l.qty)),
        )

    def test_single_side_conjuncts_pushed(self):
        plan = optimize(translate(self._join_then_filter()))
        # the cross-side conjunct stays above the join
        assert isinstance(plan, Filter)
        join = plan.child
        assert isinstance(join, Join)
        assert isinstance(join.left, Filter)
        assert isinstance(join.right, Filter)

    def test_pushdown_disabled(self):
        plan = optimize(
            translate(self._join_then_filter()), OptimizeOptions(pushdown=False)
        )
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Join)
        assert isinstance(plan.child.left, Scan)

    def test_opaque_result_selector_blocks_pushdown(self):
        join = q(
            "join",
            SRC,
            SRC2,
            lam(lambda o: o.key),
            lam(lambda l: l.key),
            lam(lambda o, l: new(total=o.total + l.qty)),
        )
        expr = q("where", join, lam(lambda r: r.total > 10))
        plan = optimize(translate(expr))
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Join)
        assert isinstance(plan.child.left, Scan)

    def test_whole_row_use_blocks_pushdown(self):
        join = q(
            "join",
            SRC,
            SRC2,
            lam(lambda o: o.key),
            lam(lambda l: l.key),
            lam(lambda o, l: new(o=o, l=l)),
        )
        # r.o compared as a whole — cannot push a bare reference
        expr = q("where", join, lam(lambda r: r.o == r.l))
        plan = optimize(translate(expr))
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Join)


class TestPlanUtilities:
    def test_plan_key_stable(self):
        e = q("where", SRC, lam(lambda s: s.x > Param("p")))
        assert plan_key(translate(e)) == plan_key(translate(e))

    def test_plan_key_distinguishes(self):
        p1 = translate(q("where", SRC, lam(lambda s: s.x > Param("p"))))
        p2 = translate(q("where", SRC, lam(lambda s: s.x < Param("p"))))
        assert plan_key(p1) != plan_key(p2)

    def test_plan_to_text_shape(self):
        plan = translate(q("where", SRC, lam(lambda s: s.x > 1)))
        text = plan_to_text(plan)
        assert "Filter" in text and "Scan" in text
        assert text.index("Filter") < text.index("Scan")
