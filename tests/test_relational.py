"""Tests for the mini relational engine (Table-1 stand-ins)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.expressions import Constant, Lambda, Member, Var, new, trace_lambda
from repro.plans import (
    AggregateSpec,
    Filter,
    GroupAggregate,
    Join,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
)
from repro.relational import (
    Catalog,
    CompiledExecutor,
    VBatch,
    VectorizedExecutor,
    VolcanoExecutor,
    tpch_bundle,
    vec_eval,
)
from repro.storage import Field, Schema, StructArray
from repro.tpch import TPCHData, reference_q1, reference_q2, reference_q3

ITEM = Schema(
    [Field("k", "int"), Field("name", "str", 8), Field("v", "float")],
    name="Item",
)
ROWS = [(1, "aa", 1.5), (2, "bb", 2.5), (1, "cc", 3.5), (3, "aa", 4.5)]

EXECUTORS = [VolcanoExecutor(), CompiledExecutor(), VectorizedExecutor(batch_size=2)]


def sources_for(executor, array):
    if isinstance(executor, VectorizedExecutor):
        return [array]
    return [array.to_objects()]


@pytest.fixture(scope="module")
def items():
    return StructArray.from_rows(ITEM, ROWS)


@pytest.mark.parametrize("executor", EXECUTORS, ids=lambda e: e.name)
class TestExecutors:
    def test_filter(self, executor, items):
        plan = Filter(Scan(0, ITEM.token), trace_lambda(lambda r: r.k == 1))
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [r.name for r in rows] == ["aa", "cc"]

    def test_group_aggregate(self, executor, items):
        plan = GroupAggregate(
            Scan(0, ITEM.token),
            key=trace_lambda(lambda r: r.k),
            aggregates=(
                AggregateSpec("sum", trace_lambda(lambda r: r.v)),
                AggregateSpec("count", None),
            ),
            output=new(k=Var("__key"), total=Var("__agg0"), n=Var("__agg1"))._node,
        )
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        got = {r.k: (round(r.total, 2), r.n) for r in rows}
        assert got == {1: (5.0, 2), 2: (2.5, 1), 3: (4.5, 1)}

    def test_scalar_aggregate(self, executor, items):
        plan = ScalarAggregate(
            Scan(0, ITEM.token),
            aggregates=(AggregateSpec("sum", trace_lambda(lambda r: r.v)),),
            output=Var("__agg0"),
        )
        total = executor.execute_scalar(plan, sources_for(executor, items), {})
        assert total == pytest.approx(12.0)

    def test_sort(self, executor, items):
        plan = Sort(Scan(0, ITEM.token), (trace_lambda(lambda r: r.v),), (True,))
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [r.v for r in rows] == [4.5, 3.5, 2.5, 1.5]

    def test_topn(self, executor, items):
        plan = TopN(
            Scan(0, ITEM.token),
            (trace_lambda(lambda r: r.v),),
            (False,),
            Constant(2),
        )
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [r.v for r in rows] == [1.5, 2.5]

    def test_scalar_guard(self, executor, items):
        plan = ScalarAggregate(
            Filter(Scan(0, ITEM.token), trace_lambda(lambda r: r.k > 99)),
            aggregates=(AggregateSpec("min", trace_lambda(lambda r: r.v)),),
            output=Var("__agg0"),
        )
        with pytest.raises(ExecutionError):
            executor.execute_scalar(plan, sources_for(executor, items), {})


class TestCatalog:
    def test_register_and_views(self, items):
        catalog = Catalog()
        catalog.register("item", items)
        assert catalog.names() == ["item"]
        assert len(catalog.objects("item")) == 4
        assert len(catalog.columns("item")) == 4
        assert catalog.table("item") is items

    def test_unknown_table(self):
        with pytest.raises(ExecutionError, match="unknown table"):
            Catalog().table("nope")

    def test_for_tpch(self):
        catalog = Catalog.for_tpch(TPCHData(scale=0.002))
        assert "lineitem" in catalog.names()
        assert len(catalog.names()) == 8


class TestVecEval:
    def _batch(self):
        return VBatch(
            {"x": np.array([1.0, 2.0, 3.0]), "s": np.array([b"ab", b"cd", b"ae"])},
            {"x": "float", "s": "str"},
        )

    def test_arithmetic(self):
        lam = trace_lambda(lambda r: r.x * 2 + 1)
        out = vec_eval(lam.body, {"r": self._batch()}, {})
        assert out.tolist() == [3.0, 5.0, 7.0]

    def test_string_coercion(self):
        lam = trace_lambda(lambda r: r.s == "ab")
        out = vec_eval(lam.body, {"r": self._batch()}, {})
        assert out.tolist() == [True, False, False]

    def test_startswith(self):
        lam = trace_lambda(lambda r: r.s.startswith("a"))
        out = vec_eval(lam.body, {"r": self._batch()}, {})
        assert out.tolist() == [True, False, True]

    def test_unbound_param(self):
        from repro.expressions import Param

        with pytest.raises(ExecutionError, match="unbound query parameter"):
            vec_eval(Param("p"), {}, {})

    def test_missing_column(self):
        lam = trace_lambda(lambda r: r.zzz)
        with pytest.raises(ExecutionError, match="no column"):
            vec_eval(lam.body, {"r": self._batch()}, {})


class TestTable1Bundles:
    @pytest.fixture(scope="class")
    def data(self):
        return TPCHData(scale=0.002)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=lambda e: e.name)
    def test_q1_matches_reference(self, data, executor):
        bundle = tpch_bundle(data, "q1")
        rows = bundle.run(executor)
        expected = reference_q1(data)
        got = [
            (r.l_returnflag, r.l_linestatus, round(r.sum_qty, 2), r.count_order)
            for r in rows
        ]
        exp = [(r[0], r[1], round(r[2], 2), r[9]) for r in expected]
        assert got == exp

    @pytest.mark.parametrize("executor", EXECUTORS, ids=lambda e: e.name)
    def test_q3_matches_reference(self, data, executor):
        bundle = tpch_bundle(data, "q3")
        rows = bundle.run(executor)
        expected = reference_q3(data)
        got = [(r.l_orderkey, round(r.revenue, 2)) for r in rows]
        exp = [(a, round(b, 2)) for a, b, _, _ in expected]
        assert got == exp

    def test_q2_all_executors_agree(self, data):
        bundle = tpch_bundle(data, "q2")
        results = []
        for executor in EXECUTORS:
            rows = bundle.run(executor)
            results.append([(round(r.s_acctbal, 2), r.p_partkey) for r in rows])
        assert results[0] == results[1] == results[2]
        expected = [(round(a, 2), d) for a, _, _, d, _ in reference_q2(data)]
        assert results[0] == expected

    def test_unknown_bundle(self, data):
        with pytest.raises(ValueError, match="unknown TPC-H query"):
            tpch_bundle(data, "q99")


PLAIN_ROWS = [(1, "aa", 1.5), (2, "bb", 2.5), (1, "cc", 3.5), (3, "aa", 4.5)]


@pytest.mark.parametrize("executor", EXECUTORS, ids=lambda e: e.name)
class TestMoreOperators:
    def test_project(self, executor, items):
        plan = Project(
            Scan(0, ITEM.token), trace_lambda(lambda r: new(twice=r.v * 2))
        )
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [round(r.twice, 1) for r in rows] == [3.0, 5.0, 7.0, 9.0]

    def test_limit_with_offset(self, executor, items):
        from repro.plans import Limit

        plan = Limit(Scan(0, ITEM.token), count=Constant(2), offset=Constant(1))
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [r.name for r in rows] == ["bb", "cc"]

    def test_distinct(self, executor, items):
        from repro.plans import Distinct

        plan = Distinct(
            Project(Scan(0, ITEM.token), trace_lambda(lambda r: new(k=r.k)))
        )
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [r.k for r in rows] == [1, 2, 3]

    def test_concat(self, executor, items):
        from repro.plans import Concat

        plan = Concat(Scan(0, ITEM.token), Scan(1, ITEM.token))
        sources = sources_for(executor, items) * 2
        rows = list(executor.execute(plan, sources, {}))
        assert len(rows) == 8

    def test_join(self, executor, items):
        plan = Join(
            Scan(0, ITEM.token),
            Scan(1, ITEM.token),
            trace_lambda(lambda l: l.k),
            trace_lambda(lambda r: r.k),
            trace_lambda(lambda l, r: new(k=l.k, a=l.v, b=r.v)),
        )
        sources = sources_for(executor, items) * 2
        rows = list(executor.execute(plan, sources, {}))
        # key 1 matches 2x2, keys 2 and 3 match 1x1 each
        assert len(rows) == 6

    def test_parameterized_filter(self, executor, items):
        from repro.expressions import Param, Binary, Member, Var, Lambda

        predicate = Lambda(("r",), Binary("ge", Member(Var("r"), "v"), Param("lo")))
        plan = Filter(Scan(0, ITEM.token), predicate)
        rows = list(
            executor.execute(plan, sources_for(executor, items), {"lo": 3.0})
        )
        assert [r.name for r in rows] == ["cc", "aa"]

    def test_avg_scalar(self, executor, items):
        plan = ScalarAggregate(
            Scan(0, ITEM.token),
            aggregates=(AggregateSpec("avg", trace_lambda(lambda r: r.v)),),
            output=Var("__agg0"),
        )
        value = executor.execute_scalar(plan, sources_for(executor, items), {})
        assert value == pytest.approx(3.0)

    def test_composite_group_key(self, executor, items):
        plan = GroupAggregate(
            Scan(0, ITEM.token),
            key=trace_lambda(lambda r: new(k=r.k, name=r.name)),
            aggregates=(AggregateSpec("count", None),),
            output=new(
                k=Member(Var("__key"), "k"),
                name=Member(Var("__key"), "name"),
                n=Var("__agg0"),
            )._node,
        )
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert len(rows) == 4  # all (k, name) pairs distinct

    def test_multi_key_sort(self, executor, items):
        plan = Sort(
            Scan(0, ITEM.token),
            (trace_lambda(lambda r: r.name), trace_lambda(lambda r: r.v)),
            (False, True),
        )
        rows = list(executor.execute(plan, sources_for(executor, items), {}))
        assert [(r.name, r.v) for r in rows] == [
            ("aa", 4.5), ("aa", 1.5), ("bb", 2.5), ("cc", 3.5),
        ]
