"""Distributed execution ≡ sequential, bit for bit.

A seeded corpus (30 seeds × 4 draws = 120 queries ≥ the 100-query
acceptance floor) runs every query shape — filters, projections, inner
joins, fused group-by aggregates, scalar folds, sort/top-n tails — on
the compiled and native engines, sequentially and on {2, 4} worker
processes, asserting **exact** agreement.  Shards are just very large
morsels and the merge algebra is the thread tier's, so bit-identity is
a fair requirement, not an aspiration.

Fault-injection tests use a kernel gated on a flag file: workers block
while the flag exists, which makes "killed mid-query" deterministic —
no sleeps racing real kernels.  A worker killed with survivors left
triggers resubmission; a pool with every worker dead raises a typed
:class:`~repro.errors.DistributedError`.  Either way: no hangs, no
orphan processes.

Float columns hold multiples of 0.25 so any summation order yields the
same bits (same convention as the main differential fuzz).
"""

import multiprocessing
import os
import pickle
import random
import threading
import time

import pytest

from repro import new
from repro.distributed import ClusterScheduler, shutdown_pools
from repro.distributed import shards as shards_mod
from repro.distributed import wire
from repro.errors import DistributedError, ExecutionError, UnsupportedQueryError
from repro.observability import METRICS
from repro.query import QueryProvider, from_struct_array
from repro.storage import Field, Schema, StructArray

T1 = Schema(
    [
        Field("id", "int"),
        Field("g", "int"),
        Field("v", "float"),
        Field("s", "str", 4),
    ],
    name="DistA",
)
T2 = Schema(
    [Field("k", "int"), Field("w", "float"), Field("t", "str", 4)],
    name="DistB",
)

_VOCAB = ["aa", "bb", "cc", "dd"]


def _exact_float(rng: random.Random) -> float:
    return rng.randrange(-200, 200) * 0.25


def _build_datasets():
    rng = random.Random(4321)
    rows_a = [
        (i, rng.randrange(6), _exact_float(rng), rng.choice(_VOCAB))
        for i in range(160)
    ]
    rows_b = [
        (rng.randrange(9), _exact_float(rng), rng.choice(_VOCAB))
        for _ in range(80)
    ]
    return StructArray.from_rows(T1, rows_a), StructArray.from_rows(T2, rows_b)


ARR_A, ARR_B = _build_datasets()

PROVIDER = QueryProvider()

#: distribution requires StructArray sources, which both engines accept
ENGINES = ("compiled", "native")
WORKER_COUNTS = (2, 4)

SEEDS = range(30)
QUERIES_PER_SEED = 4  # 30 × 4 = 120 ≥ the 100-query acceptance floor

_COVERAGE = []


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pools()
    # the no-orphan acceptance criterion: every worker process reaped
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


def _sources(engine):
    outer = from_struct_array(ARR_A).using(engine, PROVIDER)
    inner = from_struct_array(ARR_B).using(engine, PROVIDER)
    return outer, inner


# ---------------------------------------------------------------------------
# Query shapes — all randomness drawn inside shape(rng) so the builder
# applies identical structure to every engine's sources; outputs always
# project explicit fields (the native §5 'no references' rule)
# ---------------------------------------------------------------------------


def _shape_filter(rng):
    c = rng.randrange(-1, 7)
    x = _exact_float(rng)
    word = rng.choice(_VOCAB)
    pred_mode = rng.randrange(3)
    out_mode = rng.randrange(2)

    def apply(outer, inner):
        if pred_mode == 0:
            q = outer.where(lambda r: r.g > c)
        elif pred_mode == 1:
            q = outer.where(lambda r: (r.v <= x) & (r.g != c))
        else:
            q = outer.where(lambda r: (r.v > x) | (r.s == word))
        if out_mode == 0:
            return q.select(lambda r: new(i=r.id, y=r.v + r.v, s=r.s)), None
        return q.select(lambda r: r.v), None

    return apply


def _shape_join(rng):
    c = rng.randrange(0, 6)
    x = _exact_float(rng)
    filter_side = rng.randrange(3)

    def apply(outer, inner):
        left = outer.where(lambda r: r.g >= c) if filter_side == 0 else outer
        right = inner.where(lambda b: b.w < x) if filter_side == 1 else inner
        return (
            left.join(
                right,
                lambda r: r.g,
                lambda b: b.k,
                lambda r, b: new(i=r.id, v=r.v, w=b.w, t=b.t),
            ),
            None,
        )

    return apply


def _shape_group(rng):
    key_mode = rng.randrange(2)
    with_filter = rng.randrange(2)
    c = rng.randrange(0, 6)
    agg_mode = rng.randrange(3)

    def apply(outer, inner):
        q = outer.where(lambda r: r.g != c) if with_filter else outer
        key = (lambda r: r.g) if key_mode == 0 else (lambda r: r.s)
        # fused new(...) outputs: the shape the group merge algebra (and
        # the native engine) requires
        if agg_mode == 0:

            def result(grp):
                return new(k=grp.key, n=grp.count(), t=grp.sum(lambda r: r.v))

        elif agg_mode == 1:

            def result(grp):
                return new(
                    k=grp.key,
                    lo=grp.min(lambda r: r.v),
                    hi=grp.max(lambda r: r.id),
                )

        else:

            def result(grp):
                return new(
                    k=grp.key,
                    a=grp.avg(lambda r: r.v),
                    t=grp.sum(lambda r: r.v),
                    n=grp.count(),
                )

        return q.group_by(key, result), None

    return apply


def _shape_sort(rng):
    x = _exact_float(rng)
    n = rng.randrange(1, 40)
    desc = rng.randrange(2)
    with_take = rng.randrange(2)

    def apply(outer, inner):
        q = outer.where(lambda r: r.v > x).select(
            lambda r: new(g=r.g, v=r.v, i=r.id)
        )
        # ties abound (g has six values): shard merges must reproduce the
        # sequential tie order exactly
        q = q.order_by_desc(lambda p: p.g) if desc else q.order_by(lambda p: p.g)
        q = q.then_by(lambda p: p.v)
        return (q.take(n) if with_take else q), None

    return apply


def _shape_scalar(rng):
    terminal = rng.choice(["count", "sum", "min", "max", "average"])
    field = rng.randrange(2)
    c = rng.randrange(-1, 8)  # c = -1 empties the input: error parity too

    def apply(outer, inner):
        q = outer.where(lambda r: r.g < c)
        selector = None
        if terminal != "count":
            selector = (lambda r: r.v) if field else (lambda r: r.id)
        return q, (terminal, selector)

    return apply


def _shape_group_sorted(rng):
    c = rng.randrange(0, 6)

    def apply(outer, inner):
        return (
            outer.where(lambda r: r.g <= c)
            .group_by(
                lambda r: r.s,
                lambda grp: new(k=grp.key, t=grp.sum(lambda r: r.v)),
            )
            .order_by(lambda p: p.k),
            None,
        )

    return apply


SHAPES = (
    _shape_filter,
    _shape_join,
    _shape_group,
    _shape_sort,
    _shape_scalar,
    _shape_group_sorted,
)


def _run(query, terminal, workers=None):
    """Outcome pair: kind + payload, errors folded in deterministically."""
    if workers is not None:
        query = query.distributed(workers)
    try:
        if terminal is None:
            return ("rows", list(query))
        name, selector = terminal
        args = [selector] if selector is not None else []
        return ("scalar", getattr(query, name)(*args))
    except UnsupportedQueryError:
        return ("unsupported", None)
    except ExecutionError as exc:
        return ("error", str(exc))


# ---------------------------------------------------------------------------
# The differential corpus
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_distributed_corpus(seed, monkeypatch):
    monkeypatch.delenv("REPRO_DISTRIBUTED", raising=False)
    rng = random.Random(seed)
    for _ in range(QUERIES_PER_SEED):
        shape = rng.choice(SHAPES)
        apply = shape(rng)
        for engine in ENGINES:
            outer, inner = _sources(engine)
            query, term = apply(outer, inner)
            sequential = _run(query, term)
            for workers in WORKER_COUNTS:
                distributed = _run(query, term, workers)
                assert distributed == sequential, (
                    f"seed={seed} shape={shape.__name__} engine={engine} "
                    f"workers={workers}: distributed {distributed!r} != "
                    f"sequential {sequential!r}"
                )
        _COVERAGE.append((seed, shape.__name__))


def test_corpus_size_and_engagement():
    """Runs after the corpus (file order): floor held, and the corpus
    actually dispatched shard tasks — a silent fallback to in-process
    would pass the equivalence vacuously."""
    assert len(_COVERAGE) >= 100, len(_COVERAGE)
    assert {name for _, name in _COVERAGE} == {s.__name__ for s in SHAPES}
    assert METRICS.counter("dist.tasks_dispatched").value > 0


# ---------------------------------------------------------------------------
# Capability fallbacks surface on explain()
# ---------------------------------------------------------------------------


def test_explain_shows_eligibility_and_fallback_reasons():
    outer, inner = _sources("compiled")
    eligible = outer.join(
        inner, lambda r: r.g, lambda b: b.k, lambda r, b: new(i=r.id, w=b.w)
    ).distributed(2)
    text = str(eligible.explain())
    assert "distributed: eligible" in text
    assert "workers=2" in text

    left = outer.left_outer_join(
        inner,
        lambda r: r.g,
        lambda b: b.k,
        lambda r, b: new(i=r.id, w=b.w),
        {"k": 0, "w": 0.0, "t": ""},
    ).distributed(2)
    assert "distributed: in-process" in str(left.explain())

    setop = (
        outer.select(lambda r: r.g)
        .union(inner.select(lambda b: b.k))
        .distributed(2)
    )
    assert "distributed: in-process" in str(setop.explain())

    # nobody asked for distribution: the line is omitted entirely
    plain = outer.select(lambda r: r.g)
    assert "distributed:" not in str(plain.explain())


def test_fallback_shapes_still_execute_correctly():
    outer, inner = _sources("compiled")
    left = outer.left_outer_join(
        inner,
        lambda r: r.g,
        lambda b: b.k,
        lambda r, b: new(i=r.id, w=b.w),
        {"k": 0, "w": 0.0, "t": ""},
    )
    assert list(left.distributed(2)) == list(left)
    setop = outer.select(lambda r: r.g).union(inner.select(lambda b: b.k))
    assert list(setop.distributed(2)) == list(setop)


# ---------------------------------------------------------------------------
# Fault injection: worker loss mid-query
# ---------------------------------------------------------------------------

#: a kernel the test can hold open: workers spin while the flag file
#: exists (30 s ceiling so a test bug cannot hang the suite), then
#: report their shard length
_GATED_SOURCE = """\
def execute(sources, params):
    import os
    import time
    deadline = time.time() + 30.0
    while os.path.exists(params["flag"]) and time.time() < deadline:
        time.sleep(0.01)
    return [len(sources[0])]
"""


def _gated_run(scheduler, flag_path, shard_count=2):
    """Dispatch one gated task per shard; returns thread + outcome box."""
    snap = shards_mod.pin(ARR_A)
    bounds = shards_mod.shard_bounds(len(snap), shard_count)
    tokens = [
        shards_mod.table_token(snap, ("shard", lo, hi)) for lo, hi in bounds
    ]
    by_token = {
        token: (lo, hi) for token, (lo, hi) in zip(tokens, bounds)
    }

    def payload_for(token):
        lo, hi = by_token[token]
        return shards_mod.shard_payload(snap, lo, hi)

    payload = {
        "mode": "rows",
        "morsel_ordinal": 0,
        "slot_kinds": (),
        "kernels": [(_GATED_SOURCE, [])],
    }
    params_blob = pickle.dumps({"flag": str(flag_path)})
    outcome = {}

    def run():
        try:
            outcome["result"] = scheduler.run_tasks(
                "gated-artifact",
                payload,
                [(token,) for token in tokens],
                params_blob,
                payload_for,
            )
        except BaseException as exc:  # noqa: BLE001 - re-asserted by caller
            outcome["error"] = exc

    thread = threading.Thread(target=run)
    thread.start()
    expected = [hi - lo for lo, hi in bounds]
    return thread, outcome, expected


def _wait_for_inflight(scheduler, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        busy = [h for h in scheduler.live_handles() if h.inflight]
        if len(busy) >= count:
            return busy
        time.sleep(0.02)
    raise AssertionError(f"never saw {count} workers with inflight tasks")


def test_worker_kill_resubmits_to_survivor(tmp_path):
    flag = tmp_path / "gate"
    flag.write_text("hold")
    scheduler = ClusterScheduler(2)
    losses = METRICS.counter("dist.worker_losses").value
    resubs = METRICS.counter("dist.resubmissions").value
    try:
        thread, outcome, expected = _gated_run(scheduler, flag)
        busy = _wait_for_inflight(scheduler, 2)
        busy[0].process.terminate()  # one worker dies mid-task
        time.sleep(0.3)  # let the liveness probe notice
        flag.unlink()  # release the survivor
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "gather hung after worker loss"
        assert "error" not in outcome, outcome.get("error")
        partials, _ = outcome["result"]
        values = [wire.decode_value(p[0]) for p in partials]
        assert values == expected  # plan order, resubmitted shard included
        assert METRICS.counter("dist.worker_losses").value >= losses + 1
        assert METRICS.counter("dist.resubmissions").value >= resubs + 1
    finally:
        if flag.exists():
            flag.unlink()
        scheduler.shutdown()


def test_all_workers_dead_raises_typed_error(tmp_path):
    flag = tmp_path / "gate"
    flag.write_text("hold")
    scheduler = ClusterScheduler(2)
    try:
        thread, outcome, _ = _gated_run(scheduler, flag)
        busy = _wait_for_inflight(scheduler, 2)
        for handle in busy:
            handle.process.terminate()  # no survivors to resubmit to
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "gather hung after total worker loss"
        assert isinstance(outcome.get("error"), DistributedError)
        assert "no survivors" in str(outcome["error"])
    finally:
        if flag.exists():
            flag.unlink()
        scheduler.shutdown()


def test_worker_churn_under_real_queries():
    """Kill a shared-pool worker while real queries stream through: every
    result stays correct (heal or resubmit, gather never corrupts)."""
    outer, _ = _sources("compiled")
    query = outer.group_by(
        lambda r: r.g,
        lambda grp: new(k=grp.key, n=grp.count(), t=grp.sum(lambda r: r.v)),
    )
    expected = list(query)
    from repro.distributed.scheduler import get_pool

    pool = get_pool(2)
    killed = {}

    def killer():
        time.sleep(0.02)
        handles = pool.live_handles()
        if handles:
            handles[0].process.terminate()
            killed["done"] = True

    thread = threading.Thread(target=killer)
    thread.start()
    try:
        for _ in range(20):
            assert list(query.distributed(2)) == expected
    finally:
        thread.join()
    assert killed.get("done")


def test_pid_changes_after_kill_and_heal():
    """ensure_workers replaces dead processes rather than resurrecting
    handles; the healed pool serves queries again."""
    scheduler = ClusterScheduler(2)
    try:
        first = {h.process.pid for h in scheduler.ensure_workers()}
        for handle in list(scheduler.live_handles()):
            handle.process.terminate()
        deadline = time.monotonic() + 5.0
        while scheduler.live_handles() and time.monotonic() < deadline:
            time.sleep(0.02)
        healed = {h.process.pid for h in scheduler.ensure_workers()}
        assert len(healed) == 2
        assert healed.isdisjoint(first)
    finally:
        scheduler.shutdown()
