"""The query flight recorder: spans, metrics, EXPLAIN, and its cost.

Four contracts pinned here:

* **Tracer** — spans nest correctly (parent/depth links never cross
  threads), the buffer survives a 10-thread stress run, and the disabled
  fast path is cheap enough that default-off tracing costs <2% of a
  fig07-style query.
* **Metrics** — counters registered by :class:`QueryCache` agree exactly
  with its own ``CacheStats`` accounting (same locks, same increments).
* **explain()** — byte-exact goldens for TPC-H Q1/Q3 across all four
  engines (parallelism pinned to 1; the text is deterministic).
* **explain_analyze()** — executes the query and reports measured
  per-phase wall times, row counts, cache status, and morsel accounting.
"""

import threading
import time

import pytest

from repro.observability import METRICS, TRACER, MetricsRegistry, Tracer
from repro.observability.tracer import traced_rows
from repro.query import QueryCache, QueryProvider, from_iterable
from repro.storage import Field, Schema, StructArray
from repro.tpch import TPCHData, aggregation_micro
from repro.tpch.queries import q1, q3

ENGINES = ("linq", "compiled", "native", "hybrid")

SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Obs")
OBJECTS = StructArray.from_rows(
    SCHEMA, [(i, i * 0.5) for i in range(40)]
).to_objects()

_SINK = None


def _leak(r):
    # impure on purpose: the effect analysis must flag the global write
    global _SINK
    _SINK = r.x
    return True


@pytest.fixture(scope="module")
def tpch():
    return TPCHData(scale=0.001)


# ---------------------------------------------------------------------------
# tracer mechanics
# ---------------------------------------------------------------------------


class TestTracerSpans:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a"):
            pass
        assert tracer.spans() == []

    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_nesting_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner closes first
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.parent_id is None

    def test_durations_are_monotonic_and_ordered(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.001)
        inner, outer = tracer.spans()
        assert inner.duration >= 0.001
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration

    def test_attrs_via_set(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", engine="native") as sp:
            sp.set(rows=7)
        (record,) = tracer.spans()
        assert record.attrs == {"engine": "native", "rows": 7}

    def test_buffer_is_bounded(self):
        tracer = Tracer(enabled=True, max_records=10)
        for _ in range(25):
            with tracer.span("s"):
                pass
        assert len(tracer.spans()) == 10

    def test_scope_restores_previous_state(self):
        tracer = Tracer(enabled=False)
        with tracer.scope(True):
            with tracer.span("on"):
                pass
        with tracer.span("off"):
            pass
        assert [r.name for r in tracer.spans()] == ["on"]
        assert not tracer.enabled

    def test_capture_sees_spans_without_enabling(self):
        tracer = Tracer(enabled=False)
        with tracer.capture() as sink:
            with tracer.span("observed"):
                pass
        assert [r.name for r in sink] == ["observed"]
        assert tracer.spans() == []  # retained buffer untouched when off

    def test_traced_rows_counts_and_flags_completion(self):
        tracer = Tracer(enabled=True)
        assert list(traced_rows(tracer, iter(range(5)))) == list(range(5))
        (record,) = tracer.spans()
        assert record.attrs["rows"] == 5
        assert record.attrs["complete"] is True

    def test_traced_rows_partial_drain(self):
        tracer = Tracer(enabled=True)
        it = traced_rows(tracer, iter(range(100)))
        next(it), next(it)
        it.close()
        (record,) = tracer.spans()
        assert record.attrs["rows"] == 2
        assert record.attrs["complete"] is False

    def test_to_json_lines(self):
        import json

        tracer = Tracer(enabled=True)
        with tracer.span("a", k=1):
            pass
        (line,) = tracer.to_json_lines().splitlines()
        decoded = json.loads(line)
        assert decoded["name"] == "a"
        assert decoded["attrs"] == {"k": 1}
        assert decoded["duration"] >= 0


class TestTracerThreadSafety:
    def test_ten_thread_stress_preserves_per_thread_nesting(self):
        tracer = Tracer(enabled=True)
        n_threads, reps = 10, 200
        barrier = threading.Barrier(n_threads)
        errors = []

        def work():
            try:
                barrier.wait()
                for _ in range(reps):
                    with tracer.span("a"):
                        with tracer.span("b"):
                            with tracer.span("c"):
                                pass
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        records = tracer.spans()
        assert len(records) == n_threads * reps * 3
        by_id = {r.span_id: r for r in records}
        for r in records:
            # parent links never cross threads, depths follow the nesting
            expected_depth = {"a": 0, "b": 1, "c": 2}[r.name]
            assert r.depth == expected_depth
            if r.parent_id is None:
                assert r.name == "a"
            else:
                parent = by_id[r.parent_id]
                assert parent.thread == r.thread
                assert parent.name == {"b": "a", "c": "b"}[r.name]


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").add()
        reg.counter("c").add(4)
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == 5
        assert snap["h"] == {
            "count": 2,
            "sum": 6.0,
            "min": 2.0,
            "max": 4.0,
            "mean": 3.0,
        }

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")

        def work():
            for _ in range(10_000):
                counter.add()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 80_000

    def test_json_lines_roundtrip(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a.count").add(3)
        reg.histogram("a.seconds").observe(0.5)
        lines = [json.loads(line) for line in reg.to_json_lines().splitlines()]
        by_name = {entry["metric"]: entry for entry in lines}
        assert by_name["a.count"]["value"] == 3
        assert by_name["a.seconds"]["count"] == 1

    def test_cache_counters_match_cache_stats_exactly(self):
        # the acceptance contract: METRICS mirrors CacheStats 1:1 because
        # both are incremented under the same lock, in the same branch
        reg = MetricsRegistry()
        cache = QueryCache(max_entries=2, metrics=reg)
        cache.find("k")  # miss
        cache.store("k", object())
        cache.find("k")  # hit
        for i in range(4):
            cache.store(i, object())  # 3 evictions at max_entries=2
        cache.find_analysis("a")  # analysis miss
        cache.store_analysis("a", object())
        cache.find_analysis("a")  # analysis hit

        stats = cache.stats
        snap = reg.snapshot()
        assert snap["query_cache.hits"] == stats.hits == 1
        assert snap["query_cache.misses"] == stats.misses == 1
        assert snap["query_cache.evictions"] == stats.evictions == 3
        assert snap["query_cache.analysis_hits"] == stats.analysis_hits == 1
        assert snap["query_cache.analysis_misses"] == stats.analysis_misses == 1

    def test_provider_level_cache_metrics_accuracy(self):
        reg = MetricsRegistry()
        provider = QueryProvider(cache=QueryCache(metrics=reg))
        query = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(lambda r: r.x > 3)
            .in_parallel(1)
        )
        query.to_list()
        query.to_list()
        stats = provider.cache.stats
        snap = reg.snapshot()
        assert snap["query_cache.hits"] == stats.hits == 1
        assert snap["query_cache.misses"] == stats.misses == 1

    def test_compile_metrics_registered_per_engine(self):
        from repro.query import from_struct_array

        array = StructArray.from_rows(SCHEMA, [(i, i * 0.5) for i in range(40)])
        provider = QueryProvider()
        before = METRICS.counter("compile.native.count").value
        (
            from_struct_array(array)
            .using("native", provider)
            .where(lambda r: r.x > 3)
            .to_list()
        )
        assert METRICS.counter("compile.native.count").value == before + 1
        hist = METRICS.histogram("compile.native.compile_seconds").snapshot()
        assert hist["count"] >= 1
        assert hist["sum"] > 0

    def test_recycler_counters_match_recycler_stats_exactly(self, monkeypatch):
        # the acceptance contract: METRICS mirrors RecyclerStats 1:1 —
        # every stats field moves in the same branch as its counter,
        # including the delta-recycling outcomes
        from repro.query.recycler import RecyclingProvider

        monkeypatch.delenv("REPRO_DELTA_RECYCLE", raising=False)
        provider = RecyclingProvider()
        array = StructArray.from_rows(SCHEMA, [(i, i * 0.5) for i in range(100)])
        names = ("hits", "misses", "invalidations", "delta_hits", "full_reruns")
        before = {n: METRICS.counter(f"recycler.{n}").value for n in names}
        query = (
            from_iterable(array, token="obs:rec")
            .using("compiled", provider)
            .where(lambda r: r.x >= 0)
            .select(lambda r: r.y)
        )
        query.to_list()  # miss (captures delta-merge state)
        query.to_list()  # hit
        array.append_rows([(100, 50.0)])
        query.to_list()  # delta: kernels over [100, 101) only
        monkeypatch.setenv("REPRO_DELTA_RECYCLE", "0")
        array.append_rows([(101, 50.5)])
        query.to_list()  # stale + delta disabled: full re-execution
        provider.invalidate(array)

        stats = provider.recycler_stats
        moved = {
            n: METRICS.counter(f"recycler.{n}").value - before[n] for n in names
        }
        assert moved["hits"] == stats.hits == 1
        assert moved["misses"] == stats.misses == 1
        assert moved["delta_hits"] == stats.delta_hits == 1
        assert moved["full_reruns"] == stats.full_reruns == 1
        assert moved["invalidations"] == stats.invalidations == 1


class TestAnalysisMetrics:
    """The ``analysis.*`` counters, recorded once per facts derivation."""

    def test_facts_derived_and_guards_elided(self):
        derived = METRICS.counter("analysis.facts_derived").value
        elided = METRICS.counter("analysis.guards_elided").value
        provider = QueryProvider()
        (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(lambda r: r.x > 0)
            .select(lambda r: r.y / r.x)
            .to_list()
        )
        assert METRICS.counter("analysis.facts_derived").value == derived + 1
        # the filter proves the divisor nonzero: one zero-guard elided
        assert METRICS.counter("analysis.guards_elided").value == elided + 1

    def test_pipelines_killed_on_contradiction(self):
        before = METRICS.counter("analysis.pipelines_killed").value
        provider = QueryProvider()
        rows = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(lambda r: (r.x > 5) & (r.x < 3))
            .to_list()
        )
        assert rows == []
        assert METRICS.counter("analysis.pipelines_killed").value == before + 1

    def test_impure_lambda_counted_once(self):
        before = METRICS.counter("analysis.impure_downgrades").value
        provider = QueryProvider()
        query = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(_leak)
        )
        query.to_list()
        query.to_list()  # warm run: facts cached, counted once
        assert METRICS.counter("analysis.impure_downgrades").value == before + 1


# ---------------------------------------------------------------------------
# explain() goldens — deterministic text, parallelism pinned to 1
# ---------------------------------------------------------------------------

_SEQ = (
    "parallel: sequential (workers=1; request workers with in_parallel(n), "
    "using(parallelism=n) or REPRO_PARALLELISM)"
)

# pipeline segmentation from the shared IR: id, driver, fused chain, sink
# breaker — plus, on the hybrid engines, per-pipeline placement
_Q1_PIPELINES = (
    "pipelines:\n"
    "  p0: scan(source_0) | filter => group-aggregate#1 [parallel-eligible]\n"
    "  p1: group-aggregate#1 => sort#0\n"
    "  p2: sort#0 => result\n"
)
_Q1_PIPELINES_HYBRID = (
    "pipelines:\n"
    "  p0: scan(source_0) | filter => group-aggregate#1 [parallel-eligible]"
    " [managed staging -> native]\n"
    "  p1: group-aggregate#1 => sort#0 [native]\n"
    "  p2: sort#0 => result [native]\n"
)

# dataflow facts from the shared analysis pass: Q1's three avg aggregates
# drop their group-count guards (a group always has >= 1 row)
_Q1_FACTS = (
    "facts:\n"
    "  effects: pure\n"
    "  avg guards: 3 group-count guard(s) elided (group count >= 1)\n"
)
_Q3_FACTS = "facts:\n  effects: pure\n"

Q1_GOLDENS = {
    "linq": (
        "(linq engine: interpreted operator chain, no plan)\n"
        "engine: linq\n"
        "capability: supported\n"
        "parallel: sequential (the interpreted baseline never parallelizes)"
    ),
    "compiled": (
        "Sort(keys=2, desc=(False, False))\n"
        "  GroupAggregate(aggs=[sum,sum,sum,sum,avg,avg,avg,count], fused=True)\n"
        "    Filter(on l_shipdate)\n"
        "      Scan(source_0: tpch:lineitem)\n"
        "engine: compiled\n"
        "capability: supported\n" + _Q1_PIPELINES + _Q1_FACTS + _SEQ
    ),
    "native": (
        "Sort(keys=2, desc=(False, False))\n"
        "  GroupAggregate(aggs=[sum,sum,sum,sum,avg,avg,avg,count], fused=True)\n"
        "    Filter(on l_shipdate)\n"
        "      Scan(source_0: Lineitem)\n"
        "engine: native\n"
        "capability: supported\n" + _Q1_PIPELINES + _Q1_FACTS + _SEQ
    ),
    "hybrid": (
        "Sort(keys=2, desc=(False, False))\n"
        "  GroupAggregate(aggs=[sum,sum,sum,sum,avg,avg,avg,count], fused=True)\n"
        "    Filter(on l_shipdate)\n"
        "      Scan(source_0: tpch:lineitem)\n"
        "engine: hybrid\n"
        "capability: supported\n" + _Q1_PIPELINES_HYBRID + _Q1_FACTS + _SEQ
    ),
}

_Q3_PLAN = (
    "TopN(keys=2, desc=(True, False))\n"
    "  GroupAggregate(aggs=[sum], fused=True)\n"
    "    Join\n"
    "      Filter(on l_shipdate)\n"
    "        Scan(source_0: {lineitem})\n"
    "      Join\n"
    "        Filter(on o_orderdate)\n"
    "          Scan(source_1: {orders})\n"
    "        Filter(on c_mktsegment)\n"
    "          Scan(source_2: {customer})\n"
)

_Q3_PIPELINES = (
    "pipelines:\n"
    "  p0: scan(source_2) | filter => join-build#3\n"
    "  p1: scan(source_1) | filter | join-probe => join-build#2\n"
    "  p2: scan(source_0) | filter | join-probe => group-aggregate#1\n"
    "  p3: group-aggregate#1 => topn#0\n"
    "  p4: topn#0 => result\n"
)
_Q3_PIPELINES_HYBRID = (
    "pipelines:\n"
    "  p0: scan(source_2) | filter => join-build#3"
    " [managed staging -> native]\n"
    "  p1: scan(source_1) | filter | join-probe => join-build#2"
    " [managed staging -> native]\n"
    "  p2: scan(source_0) | filter | join-probe => group-aggregate#1"
    " [managed staging -> native]\n"
    "  p3: group-aggregate#1 => topn#0 [native]\n"
    "  p4: topn#0 => result [native]\n"
)

Q3_GOLDENS = {
    "linq": Q1_GOLDENS["linq"],
    "compiled": _Q3_PLAN.format(
        lineitem="tpch:lineitem", orders="tpch:orders", customer="tpch:customer"
    )
    + "engine: compiled\ncapability: supported\n"
    + _Q3_PIPELINES + _Q3_FACTS + _SEQ,
    "native": _Q3_PLAN.format(
        lineitem="Lineitem", orders="Orders", customer="Customer"
    )
    + "engine: native\ncapability: supported\n"
    + _Q3_PIPELINES + _Q3_FACTS + _SEQ,
    "hybrid": _Q3_PLAN.format(
        lineitem="tpch:lineitem", orders="tpch:orders", customer="tpch:customer"
    )
    + "engine: hybrid\ncapability: supported\n"
    + _Q3_PIPELINES_HYBRID + _Q3_FACTS + _SEQ,
}


class TestExplainGoldens:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_q1(self, tpch, engine):
        query = q1(tpch, engine=engine, provider=QueryProvider()).in_parallel(1)
        assert query.explain() == Q1_GOLDENS[engine]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_q3(self, tpch, engine):
        query = q3(tpch, engine=engine, provider=QueryProvider()).in_parallel(1)
        assert query.explain() == Q3_GOLDENS[engine]

    def test_first_line_remains_the_plan_root(self, tpch):
        # pre-observability contract: callers slice splitlines()[0]
        query = q1(tpch, engine="compiled", provider=QueryProvider())
        assert query.explain().splitlines()[0].startswith("Sort(")

    def test_parallel_eligibility_reported(self, tpch):
        query = q1(tpch, engine="compiled", provider=QueryProvider())
        text = query.in_parallel(4).explain()
        assert "parallel: eligible (mode=group" in text
        assert "workers=4" in text

    def test_unsupported_engine_lists_reasons(self):
        provider = QueryProvider()
        query = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("native", provider)
            .select(lambda r: (r.x, r.y))  # tuples aren't native-layout
        )
        text = query.explain()
        assert "capability: unsupported" in text
        assert "\n  - " in text  # at least one reason line


# ---------------------------------------------------------------------------
# explain_analyze() — the acceptance criterion
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_q1_reports_per_phase_timings(self, tpch, engine):
        query = q1(tpch, engine=engine, provider=QueryProvider()).in_parallel(1)
        analysis = query.explain_analyze()
        assert analysis.engine == engine
        assert analysis.rows == 4  # Q1's four (returnflag, linestatus) groups
        assert analysis.phase_seconds("query.execute") > 0
        if engine == "linq":
            assert analysis.cache == "n/a (linq never compiles)"
        else:
            assert analysis.cache == "miss"
            for phase in (
                "query.canonicalize",
                "query.cache_lookup",
                "query.optimize",
                "query.validate",
                "codegen.generate",
                "codegen.compile_source",
                "query.compile",
            ):
                assert analysis.phase_seconds(phase) > 0, phase
        rendered = analysis.render()
        assert "phases (wall ms):" in rendered
        assert "query.execute" in rendered

    def test_warm_cache_reported_as_hit(self, tpch):
        provider = QueryProvider()
        query = q1(tpch, engine="compiled", provider=provider).in_parallel(1)
        query.explain_analyze()
        warm = query.explain_analyze()
        assert warm.cache == "hit"
        assert warm.phase_seconds("query.compile") == 0  # nothing recompiled

    def test_parallel_run_reports_morsels(self, tpch):
        provider = QueryProvider()
        query = q1(tpch, engine="compiled", provider=provider)
        analysis = query.in_parallel(2, 1000).explain_analyze()
        assert analysis.morsels >= 1
        assert "workers x" in analysis.parallel
        assert analysis.phase_seconds("parallel.merge") > 0

    def test_rows_match_actual_execution(self, tpch):
        provider = QueryProvider()
        query = q3(tpch, engine="native", provider=provider)
        assert query.explain_analyze().rows == len(query.to_list())


# ---------------------------------------------------------------------------
# the trace switch and its cost
# ---------------------------------------------------------------------------


class TestTraceSwitch:
    def test_using_trace_records_spans(self):
        TRACER.reset()
        provider = QueryProvider()
        (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider, trace=True)
            .where(lambda r: r.x > 3)
            .to_list()
        )
        names = {r.name for r in TRACER.spans()}
        assert "query.execute" in names
        TRACER.reset()

    def test_trace_includes_dataflow_analysis_span(self):
        TRACER.reset()
        provider = QueryProvider()
        (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider, trace=True)
            .where(lambda r: r.x > 3)
            .to_list()
        )
        names = {r.name for r in TRACER.spans()}
        assert "query.lower" in names
        assert "query.analyze_dataflow" in names
        TRACER.reset()

    def test_untraced_query_records_nothing(self):
        TRACER.reset()
        provider = QueryProvider()
        (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(lambda r: r.x > 3)
            .to_list()
        )
        assert TRACER.spans() == []

    def test_default_off_overhead_under_two_percent(self, tpch):
        # The disabled fast path costs one attribute read + one `or` per
        # span() call.  Comparing two noisy end-to-end timings would flake,
        # so bound the overhead analytically: (cost of a no-op span) x
        # (spans per query) must be <2% of a fig07 query's wall time.
        provider = QueryProvider()
        query = aggregation_micro(tpch, "compiled", 0.6, provider).in_parallel(1)
        query.to_list()  # warm: compile once, like the fig07 harness

        # spans a warm traced run would emit
        with TRACER.capture() as spans:
            query.to_list()
        spans_per_query = len(spans)
        assert spans_per_query >= 3  # canonicalize, cache lookup, execute

        # per-call cost of the disabled span() fast path
        reps = 50_000
        start = time.perf_counter()
        for _ in range(reps):
            with TRACER.span("noop"):
                pass
        per_span = (time.perf_counter() - start) / reps

        # wall time of the untraced query (median of 5)
        times = []
        for _ in range(5):
            start = time.perf_counter()
            query.to_list()
            times.append(time.perf_counter() - start)
        query_time = sorted(times)[2]

        overhead = per_span * spans_per_query
        assert overhead < 0.02 * query_time, (
            f"tracing overhead {overhead * 1e6:.2f}us exceeds 2% of "
            f"query time {query_time * 1e3:.3f}ms"
        )
