"""Unit tests for the §6 backend: staging split, mappings, hybrid codegen."""

import datetime
from types import SimpleNamespace

import pytest

from repro.codegen.hybrid_backend import HybridBackend, _enc_str, _find_stream_target
from repro.codegen.mapping import (
    StagedSource,
    infer_object_schema,
    source_field_usage,
    split_staging,
    staged_schema_for,
)
from repro.errors import SchemaError, UnsupportedQueryError
from repro.expressions import Var, new, trace_lambda
from repro.plans import (
    AggregateSpec,
    Filter,
    Join,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
)
from repro.storage import Field, Schema, StructArray


def item(**kw):
    return SimpleNamespace(**kw)


SCAN = Scan(0, "T")


class TestSchemaInference:
    def test_basic_kinds(self):
        items = [item(a=1, b=2.5, c="hello", d=True, e=datetime.date(2020, 1, 1))]
        schema = infer_object_schema(items)
        kinds = {f.name: f.kind for f in schema.fields}
        assert kinds == {"a": "int", "b": "float", "c": "str", "d": "bool", "e": "date"}

    def test_string_width_sampled_with_margin(self):
        items = [item(s="ab"), item(s="abcdefgh")]
        schema = infer_object_schema(items, {"s"})
        assert schema["s"].size >= 16  # max sampled width × 2

    def test_int_promotes_to_float_when_mixed(self):
        items = [item(x=1), item(x=2.5)]
        schema = infer_object_schema(items, {"x"})
        assert schema["x"].kind == "float"

    def test_restricted_fields(self):
        items = [item(a=1, b="x")]
        schema = infer_object_schema(items, {"a"})
        assert schema.field_names == ("a",)

    def test_missing_attribute_raises(self):
        with pytest.raises(SchemaError, match="lacks attribute"):
            infer_object_schema([item(a=1)], {"zz"})

    def test_unsupported_type_raises(self):
        with pytest.raises(SchemaError, match="no flat native representation"):
            infer_object_schema([item(a=[1, 2])], {"a"})

    def test_empty_with_fields_gets_placeholder(self):
        schema = infer_object_schema([], {"x", "y"})
        assert schema.field_names == ("x", "y")

    def test_empty_without_fields_raises(self):
        with pytest.raises(SchemaError, match="empty collection"):
            infer_object_schema([])

    def test_namedtuple_attributes(self):
        from collections import namedtuple

        T = namedtuple("T", ["a", "b"])
        schema = infer_object_schema([T(1, "x")])
        assert set(schema.field_names) == {"a", "b"}


class TestSourceFieldUsage:
    def test_project_narrows(self):
        plan = Project(SCAN, trace_lambda(lambda s: s.a + s.b))
        assert source_field_usage(plan) == {0: {"a", "b"}}

    def test_filter_adds_predicate_fields(self):
        plan = Project(
            Filter(SCAN, trace_lambda(lambda s: s.c > 1)),
            trace_lambda(lambda s: s.a),
        )
        assert source_field_usage(plan)[0] == {"a", "c"}

    def test_join_separates_sides(self):
        plan = Join(
            Scan(0, "L"),
            Scan(1, "R"),
            trace_lambda(lambda l: l.lk),
            trace_lambda(lambda r: r.rk),
            trace_lambda(lambda l, r: new(x=l.a, y=r.b)),
        )
        usage = source_field_usage(plan)
        assert usage[0] == {"lk", "a"}
        assert usage[1] == {"rk", "b"}

    def test_whole_element_use_is_none(self):
        plan = Project(SCAN, trace_lambda(lambda s: s))
        assert source_field_usage(plan)[0] is None

    def test_aggregates_contribute(self):
        plan = ScalarAggregate(
            SCAN,
            (AggregateSpec("sum", trace_lambda(lambda s: s.v * s.w)),),
            Var("__agg0"),
        )
        assert source_field_usage(plan)[0] == {"v", "w"}


class TestSplitStaging:
    def test_scan_adjacent_filters_peel(self):
        plan = ScalarAggregate(
            Filter(SCAN, trace_lambda(lambda s: s.a > 1)),
            (AggregateSpec("sum", trace_lambda(lambda s: s.v)),),
            Var("__agg0"),
        )
        stripped, staged = split_staging(plan)
        assert isinstance(stripped.child, Scan)
        assert len(staged[0].predicates) == 1
        # predicate fields dropped from staging: only the aggregate's field
        assert staged[0].fields == ("v",)

    def test_non_adjacent_filter_stays(self):
        plan = Filter(
            Project(SCAN, trace_lambda(lambda s: new(x=s.a))),
            trace_lambda(lambda r: r.x > 1),
        )
        stripped, staged = split_staging(plan)
        assert isinstance(stripped, Filter)
        assert staged[0].predicates == ()

    def test_whole_element_beyond_boundary_rejected(self):
        plan = Project(SCAN, trace_lambda(lambda s: s))
        with pytest.raises(UnsupportedQueryError, match="whole elements"):
            split_staging(plan)

    def test_staged_schema_from_struct_array(self):
        schema = Schema([Field("a", "int"), Field("b", "float")], name="T")
        array = StructArray.from_rows(schema, [(1, 2.0)])
        spec = StagedSource(0, (), ("b",))
        staged = staged_schema_for(array, spec)
        assert staged.field_names == ("b",)

    def test_staged_schema_missing_field(self):
        schema = Schema([Field("a", "int")], name="T")
        array = StructArray.from_rows(schema, [(1,)])
        spec = StagedSource(0, (), ("zz",))
        with pytest.raises(SchemaError, match="lacks staged fields"):
            staged_schema_for(array, spec)


class TestStreamTarget:
    def _staged(self, *ordinals):
        return {
            o: StagedSource(o, (), ("v",), schema=None) for o in ordinals
        }

    def test_scalar_aggregate_over_scan_streams(self):
        plan = ScalarAggregate(
            SCAN, (AggregateSpec("sum", trace_lambda(lambda s: s.v)),), Var("__agg0")
        )
        node, ordinal = _find_stream_target(plan, self._staged(0))
        assert node is plan and ordinal == 0

    def test_join_probe_side_streams(self):
        plan = Join(
            Scan(0, "L"),
            Scan(1, "R"),
            trace_lambda(lambda l: l.k),
            trace_lambda(lambda r: r.k),
            trace_lambda(lambda l, r: new(a=l.v, b=r.v)),
        )
        node, ordinal = _find_stream_target(plan, self._staged(0, 1))
        assert node is plan and ordinal == 0  # the probe (left) side

    def test_sort_cannot_stream(self):
        plan = Sort(SCAN, (trace_lambda(lambda s: s.v),), (False,))
        node, ordinal = _find_stream_target(plan, self._staged(0))
        assert node is None and ordinal is None

    def test_self_join_does_not_stream(self):
        plan = Join(
            Scan(0, "T"),
            Scan(0, "T"),
            trace_lambda(lambda l: l.k),
            trace_lambda(lambda r: r.k),
            trace_lambda(lambda l, r: new(a=l.v, b=r.v)),
        )
        node, _ = _find_stream_target(plan, self._staged(0))
        assert node is None


class TestStagingSafety:
    def test_enc_str_rejects_overflow(self):
        assert _enc_str("abc", 8) == b"abc"
        with pytest.raises(SchemaError, match="exceeds the staged width"):
            _enc_str("a" * 99, 8)

    def test_string_growth_beyond_sample_raises_not_truncates(self):
        # first 1000 elements short; a later element overflows the sampled
        # width — staging must fail loudly, never corrupt data
        items = [item(s="ab", v=1.0) for _ in range(1000)]
        items.append(item(s="x" * 200, v=2.0))
        from repro.query import from_iterable

        query = (
            from_iterable(items, token="t:grow")
            .using("hybrid")
            .group_by(lambda i: i.s, lambda g: new(s=g.key, t=g.sum(lambda i: i.v)))
        )
        with pytest.raises(SchemaError, match="exceeds the staged width"):
            query.to_list()


class TestHybridBackendNames:
    @pytest.mark.parametrize(
        "buffered, minimal, expected",
        [
            (False, False, "hybrid"),
            (True, False, "hybrid_buffered"),
            (False, True, "hybrid_min"),
            (True, True, "hybrid_min_buffered"),
        ],
    )
    def test_engine_names(self, buffered, minimal, expected):
        assert HybridBackend(buffered=buffered, minimal=minimal).name == expected


class TestBufferedFallback:
    def test_sort_falls_back_to_full_staging(self):
        """Buffering is inapplicable to sorting (quicksort requires full
        arrays — §7.2); the buffered engine silently uses full staging."""
        items = [item(k=i % 3, v=float(i)) for i in range(50)]
        from repro.query import from_iterable

        q = (
            from_iterable(items, token="t:sortbuf")
            .using("hybrid_buffered")
            .group_by(lambda i: i.k, lambda g: new(k=g.key, t=g.sum(lambda i: i.v)))
            .order_by(lambda r: r.k)
        )
        rows = q.to_list()
        assert [r.k for r in rows] == [0, 1, 2]

    def test_page_size_controls_flush_count(self):
        from repro.plans import translate, optimize
        from repro.expressions.nodes import QueryOp, SourceExpr

        items = [item(k=1, v=float(i)) for i in range(100)]
        expr = QueryOp(
            "sum", SourceExpr(0, "t:page"), (trace_lambda(lambda s: s.v),)
        )
        plan = optimize(translate(expr))
        small = HybridBackend(buffered=True, page_bytes=64)
        compiled = small.compile(plan, [items])
        assert compiled.execute([items], {}) == pytest.approx(sum(range(100)))
        # the capacity constant derived from the page size appears in code
        assert ">= 8" in compiled.source_code  # 64B / 8B float rows


class TestMinVariantShapes:
    def _items(self, n=60):
        from types import SimpleNamespace

        return [
            SimpleNamespace(a=i % 4, b=float(n - i), name=f"x{i % 5}")
            for i in range(n)
        ]

    def test_multi_key_sort_min(self):
        from repro.query import from_iterable

        items = self._items()
        expected = sorted(items, key=lambda s: (s.a, -s.b))
        got = (
            from_iterable(items, token="min:multi")
            .using("hybrid_min")
            .order_by(lambda s: s.a)
            .then_by_desc(lambda s: s.b)
            .to_list()
        )
        assert [(r.a, r.b) for r in got] == [(r.a, r.b) for r in expected]

    def test_min_sort_yields_original_objects(self):
        from repro.query import from_iterable

        items = self._items(10)
        got = (
            from_iterable(items, token="min:ident")
            .using("hybrid_min")
            .order_by(lambda s: s.b)
            .to_list()
        )
        assert all(any(r is original for original in items) for r in got)

    def test_min_topn_with_projection(self):
        from repro.query import from_iterable

        items = self._items()
        got = (
            from_iterable(items, token="min:topn")
            .using("hybrid_min")
            .order_by_desc(lambda s: s.b)
            .take(3)
            .select(lambda s: s.b)
            .to_list()
        )
        assert got == sorted((s.b for s in items), reverse=True)[:3]

    def test_min_three_way_join(self):
        from types import SimpleNamespace

        from repro.query import from_iterable

        a = [SimpleNamespace(k=i % 3, tag=i) for i in range(9)]
        b = [SimpleNamespace(k=i, label=f"b{i}") for i in range(3)]
        c = [SimpleNamespace(k=i, extra=i * 10) for i in range(3)]
        inner = from_iterable(b, token="min:b").join(
            from_iterable(c, token="min:c"),
            lambda x: x.k,
            lambda y: y.k,
            lambda x, y: new(k=x.k, label=x.label, extra=y.extra),
        )
        query = (
            from_iterable(a, token="min:a")
            .using("hybrid_min")
            .join(
                inner,
                lambda x: x.k,
                lambda y: y.k,
                lambda x, y: new(tag=x.tag, label=y.label, extra=y.extra),
            )
        )
        rows = query.to_list()
        assert len(rows) == 9
        assert {(r.tag, r.label) for r in rows} == {
            (i, f"b{i % 3}") for i in range(9)
        }
