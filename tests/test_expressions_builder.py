"""Tests for lambda capture by tracing (the expression-tree builder)."""

import pytest

from repro.errors import TraceError
from repro.expressions import (
    AggCall,
    Binary,
    Conditional,
    Constant,
    Lambda,
    Member,
    Method,
    New,
    P,
    Param,
    Unary,
    Var,
    if_then_else,
    new,
    trace_lambda,
)


class TestBasicTracing:
    def test_identity(self):
        lam = trace_lambda(lambda s: s)
        assert lam == Lambda(("s",), Var("s"))

    def test_member_access(self):
        lam = trace_lambda(lambda s: s.population)
        assert lam.body == Member(Var("s"), "population")

    def test_nested_member_access(self):
        lam = trace_lambda(lambda s: s.shop.city.name)
        body = lam.body
        assert isinstance(body, Member) and body.name == "name"
        assert body.target == Member(Member(Var("s"), "shop"), "city")

    def test_comparison_with_constant(self):
        lam = trace_lambda(lambda s: s.name == "London")
        assert lam.body == Binary("eq", Member(Var("s"), "name"), Constant("London"))

    def test_comparison_with_parameter(self):
        lam = trace_lambda(lambda s: s.name == P("city"))
        assert lam.body == Binary("eq", Member(Var("s"), "name"), Param("city"))

    def test_param_names_come_from_lambda_signature(self):
        lam = trace_lambda(lambda order, line: order.key == line.key)
        assert lam.params == ("order", "line")

    def test_lambda_node_passes_through(self):
        original = Lambda(("s",), Var("s"))
        assert trace_lambda(original) is original

    def test_non_callable_rejected(self):
        with pytest.raises(TraceError, match="expected a callable"):
            trace_lambda(42)


class TestOperators:
    @pytest.mark.parametrize(
        "fn, op",
        [
            (lambda s: s.x + 1, "add"),
            (lambda s: s.x - 1, "sub"),
            (lambda s: s.x * 2, "mul"),
            (lambda s: s.x / 2, "truediv"),
            (lambda s: s.x // 2, "floordiv"),
            (lambda s: s.x % 2, "mod"),
            (lambda s: s.x < 1, "lt"),
            (lambda s: s.x <= 1, "le"),
            (lambda s: s.x > 1, "gt"),
            (lambda s: s.x >= 1, "ge"),
            (lambda s: s.x != 1, "ne"),
        ],
    )
    def test_binary_ops(self, fn, op):
        lam = trace_lambda(fn)
        assert isinstance(lam.body, Binary)
        assert lam.body.op == op

    def test_reflected_arithmetic(self):
        lam = trace_lambda(lambda s: 1 - s.x)
        assert lam.body == Binary("sub", Constant(1), Member(Var("s"), "x"))

    def test_reflected_comparison_swaps(self):
        # 5 < s.x  ⇒  int.__lt__ fails, proxy __gt__ runs: s.x > 5
        lam = trace_lambda(lambda s: 5 < s.x)
        assert lam.body == Binary("gt", Member(Var("s"), "x"), Constant(5))

    def test_conjunction_with_ampersand(self):
        lam = trace_lambda(lambda s: (s.x > 1) & (s.y < 2))
        assert isinstance(lam.body, Binary) and lam.body.op == "and"

    def test_disjunction_with_pipe(self):
        lam = trace_lambda(lambda s: (s.x > 1) | (s.y < 2))
        assert lam.body.op == "or"

    def test_negation_with_tilde(self):
        lam = trace_lambda(lambda s: ~(s.x > 1))
        assert isinstance(lam.body, Unary) and lam.body.op == "not"

    def test_unary_minus_and_abs(self):
        assert trace_lambda(lambda s: -s.x).body == Unary("neg", Member(Var("s"), "x"))
        assert trace_lambda(lambda s: abs(s.x)).body == Unary(
            "abs", Member(Var("s"), "x")
        )


class TestGuardRails:
    def test_python_and_raises_helpfully(self):
        with pytest.raises(TraceError, match="'&'"):
            trace_lambda(lambda s: s.x > 1 and s.y < 2)

    def test_python_not_raises(self):
        with pytest.raises(TraceError):
            trace_lambda(lambda s: not s.x)

    def test_iteration_raises(self):
        with pytest.raises(TraceError, match="iterated"):
            trace_lambda(lambda s: [v for v in s])

    def test_attribute_assignment_raises(self):
        def bad(s):
            s.x = 1
            return s

        with pytest.raises(TraceError, match="immutable"):
            trace_lambda(bad)

    def test_unsupported_method_raises(self):
        with pytest.raises(TraceError, match="not supported"):
            trace_lambda(lambda s: s.name.casefold())

    def test_calling_bare_variable_raises(self):
        with pytest.raises(TraceError, match="non-method"):
            trace_lambda(lambda s: s())


class TestMethodsAndConditionals:
    def test_startswith(self):
        lam = trace_lambda(lambda s: s.name.startswith("Lon"))
        assert lam.body == Method(
            Member(Var("s"), "name"), "startswith", (Constant("Lon"),)
        )

    def test_contains(self):
        lam = trace_lambda(lambda s: s.name.contains("ondo"))
        assert lam.body == Method(
            Member(Var("s"), "name"), "contains", (Constant("ondo"),)
        )

    def test_if_then_else(self):
        lam = trace_lambda(lambda s: if_then_else(s.x > 0, s.x, 0))
        assert isinstance(lam.body, Conditional)
        assert lam.body.other == Constant(0)


class TestNewRecords:
    def test_new_captures_field_order(self):
        lam = trace_lambda(lambda s: new(a=s.x, b=s.y))
        assert isinstance(lam.body, New)
        assert lam.body.field_names == ("a", "b")

    def test_new_with_expressions(self):
        lam = trace_lambda(lambda s: new(total=s.price * (1 - s.discount)))
        (name, expr), = lam.body.fields
        assert name == "total"
        assert isinstance(expr, Binary) and expr.op == "mul"


class TestGroupAggregates:
    def test_sum_traces_to_aggcall(self):
        lam = trace_lambda(lambda g: new(total=g.sum(lambda s: s.price)))
        (_, agg), = lam.body.fields
        assert isinstance(agg, AggCall) and agg.kind == "sum"
        assert agg.arg == Lambda(("s",), Member(Var("s"), "price"))
        assert agg.group == Var("g")

    def test_count_takes_no_args(self):
        lam = trace_lambda(lambda g: new(n=g.count()))
        (_, agg), = lam.body.fields
        assert agg == AggCall("count", None, group=Var("g"))

    def test_count_with_args_rejected(self):
        with pytest.raises(TraceError, match="count"):
            trace_lambda(lambda g: g.count(lambda s: s.x))

    def test_group_key_is_member_access(self):
        lam = trace_lambda(lambda g: new(k=g.key, n=g.count()))
        (_, key_expr), _ = lam.body.fields
        assert key_expr == Member(Var("g"), "key")

    def test_avg_min_max(self):
        lam = trace_lambda(
            lambda g: new(
                a=g.avg(lambda s: s.x), lo=g.min(lambda s: s.x), hi=g.max(lambda s: s.x)
            )
        )
        kinds = [e.kind for _, e in lam.body.fields]
        assert kinds == ["avg", "min", "max"]

    def test_sum_requires_selector(self):
        with pytest.raises(TraceError, match="selector"):
            trace_lambda(lambda g: g.sum())
