"""Tests for runtime support structures (hash tables, sorting, top-N, aggregates)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    AggSpec,
    GroupTable,
    Grouping,
    JoinTable,
    TopNHeap,
    argsort_indexes,
    build_join_table,
    multi_key_less,
    plan_accumulators,
    python_sorted_indexes,
    quicksort_indexes,
)


class TestGrouping:
    def test_iterates_elements(self):
        g = Grouping("k", [1, 2, 3])
        assert list(g) == [1, 2, 3]
        assert len(g) == 3
        assert g.key == "k"


class TestGroupTable:
    def test_groups_preserve_first_seen_order(self):
        table = GroupTable()
        for key, value in [("b", 1), ("a", 2), ("b", 3), ("c", 4)]:
            table.add(key, value)
        groups = list(table.groupings())
        assert [g.key for g in groups] == ["b", "a", "c"]
        assert list(groups[0]) == [1, 3]

    def test_len_counts_groups(self):
        table = GroupTable()
        table.add("x", 1)
        table.add("x", 2)
        table.add("y", 3)
        assert len(table) == 2


class TestJoinTable:
    def test_probe_hit_and_miss(self):
        table = build_join_table([(1, "a"), (2, "b"), (1, "c")], key_fn=lambda t: t[0])
        assert [v for _, v in table.probe(1)] == ["a", "c"]
        assert table.probe(99) == []
        assert 1 in table and 99 not in table

    def test_probe_miss_returns_shared_empty_safely(self):
        table = JoinTable()
        miss1 = table.probe("x")
        miss2 = table.probe("y")
        assert miss1 == [] and miss2 == []


class TestQuicksort:
    def test_empty_and_single(self):
        assert quicksort_indexes([]) == []
        assert quicksort_indexes([5]) == [0]

    def test_matches_sorted(self):
        rng = random.Random(7)
        keys = [rng.randint(0, 1000) for _ in range(500)]
        order = quicksort_indexes(keys)
        assert [keys[i] for i in order] == sorted(keys)

    def test_descending(self):
        keys = [3, 1, 4, 1, 5, 9, 2, 6]
        order = quicksort_indexes(keys, descending=True)
        assert [keys[i] for i in order] == sorted(keys, reverse=True)

    def test_presorted_input_no_recursion_blowup(self):
        keys = list(range(5000))
        assert [keys[i] for i in quicksort_indexes(keys)] == keys

    def test_reversed_input(self):
        keys = list(range(2000, 0, -1))
        order = quicksort_indexes(keys)
        assert [keys[i] for i in order] == sorted(keys)

    def test_all_equal_keys(self):
        keys = [7] * 100
        assert sorted(quicksort_indexes(keys)) == list(range(100))

    def test_stable_on_ties(self):
        # LINQ's OrderBy is stable: equal keys keep input order
        keys = [1, 0, 1, 0, 1]
        assert quicksort_indexes(keys) == [1, 3, 0, 2, 4]
        assert quicksort_indexes(keys, descending=True) == [0, 2, 4, 1, 3]

    @given(st.lists(st.integers(0, 5), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_stability(self, keys):
        order = quicksort_indexes(keys)
        expected = sorted(range(len(keys)), key=lambda i: (keys[i], i))
        assert order == expected

    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_agrees_with_sorted(self, keys):
        order = quicksort_indexes(keys)
        assert [keys[i] for i in order] == sorted(keys)
        assert sorted(order) == list(range(len(keys)))

    def test_argsort_agrees_with_quicksort_values(self):
        keys = np.array([5.0, 1.0, 3.0, 3.0, 2.0])
        py_vals = [keys[i] for i in quicksort_indexes(list(keys))]
        np_vals = list(keys[argsort_indexes(keys)])
        assert py_vals == np_vals


class TestMultiKeySort:
    def test_single_key(self):
        keys = [3, 1, 2]
        assert python_sorted_indexes(keys) == [1, 2, 0]

    def test_two_keys_mixed_directions(self):
        # sort by first asc, second desc
        keys = [(1, "a"), (0, "b"), (1, "c"), (0, "a")]
        order = python_sorted_indexes(keys, directions=[False, True])
        assert [keys[i] for i in order] == [(0, "b"), (0, "a"), (1, "c"), (1, "a")]

    def test_stability(self):
        keys = [(1,), (1,), (0,)]
        order = python_sorted_indexes(keys, directions=[False])
        assert order == [2, 0, 1]

    def test_multi_key_less(self):
        assert multi_key_less((1, 2), (1, 3), [False, False])
        assert not multi_key_less((1, 3), (1, 2), [False, False])
        assert multi_key_less((1, 3), (1, 2), [False, True])
        assert not multi_key_less((1, 2), (1, 2), [False, False])


class TestTopNHeap:
    def _topn(self, keys, limit, directions=(False,)):
        heap = TopNHeap(limit, directions)
        for i, k in enumerate(keys):
            heap.offer((k,), f"e{i}")
        return heap.results()

    def test_keeps_n_smallest_ascending(self):
        results = self._topn([5, 1, 4, 2, 3], limit=2)
        assert results == ["e1", "e3"]

    def test_keeps_n_largest_descending(self):
        results = self._topn([5, 1, 4, 2, 3], limit=2, directions=(True,))
        assert results == ["e0", "e2"]

    def test_limit_exceeds_input(self):
        assert self._topn([2, 1], limit=10) == ["e1", "e0"]

    def test_zero_limit(self):
        assert self._topn([1, 2, 3], limit=0) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            TopNHeap(-1, (False,))

    def test_stable_for_equal_keys(self):
        results = self._topn([1, 1, 1, 1], limit=3)
        assert results == ["e0", "e1", "e2"]

    @given(st.lists(st.integers(0, 50), max_size=100), st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_sorted_take(self, keys, limit):
        heap = TopNHeap(limit, (False,))
        for i, k in enumerate(keys):
            heap.offer((k,), (k, i))
        expected = sorted(((k, i) for i, k in enumerate(keys)))[:limit]
        assert heap.results() == expected


class TestFusedAggregates:
    def _run(self, specs, elements):
        plan = plan_accumulators(specs)
        acc = plan.new_accumulator()
        for e in elements:
            acc.update(e)
        return plan.finalize(acc), plan

    def test_single_sum(self):
        results, _ = self._run([AggSpec("sum", "v", lambda e: e)], [1, 2, 3])
        assert results == [6]

    def test_count_without_selector(self):
        results, _ = self._run([AggSpec("count", None)], ["a", "b"])
        assert results == [2]

    def test_min_max(self):
        specs = [AggSpec("min", "v", lambda e: e), AggSpec("max", "v", lambda e: e)]
        results, _ = self._run(specs, [3, 1, 2])
        assert results == [1, 3]

    def test_avg_decomposes_into_shared_sum_and_count(self):
        specs = [
            AggSpec("avg", "v", lambda e: e),
            AggSpec("sum", "v", lambda e: e),
            AggSpec("count", None),
        ]
        results, plan = self._run(specs, [2, 4])
        assert results == [3.0, 6, 2]
        # CSE: avg shares the sum and the count slots — only 2 physical slots
        assert len(plan.slots) == 2

    def test_duplicate_specs_share_slots(self):
        specs = [
            AggSpec("sum", "price", lambda e: e),
            AggSpec("sum", "price", lambda e: e),
        ]
        results, plan = self._run(specs, [1, 2])
        assert results == [3, 3]
        assert len(plan.slots) == 1

    def test_distinct_selectors_get_distinct_slots(self):
        specs = [
            AggSpec("sum", "a", lambda e: e[0]),
            AggSpec("sum", "b", lambda e: e[1]),
        ]
        results, plan = self._run(specs, [(1, 10), (2, 20)])
        assert results == [3, 30]
        assert len(plan.slots) == 2

    def test_avg_of_empty_group_is_none(self):
        results, _ = self._run([AggSpec("avg", "v", lambda e: e)], [])
        assert results == [None]

    def test_only_one_count_slot_across_avgs(self):
        specs = [
            AggSpec("avg", "a", lambda e: e[0]),
            AggSpec("avg", "b", lambda e: e[1]),
        ]
        results, plan = self._run(specs, [(2, 10), (4, 30)])
        assert results == [3.0, 20.0]
        kinds = [k for k, _ in plan.slots]
        assert kinds.count("count") == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AggSpec("median", "v", lambda e: e)

    def test_missing_selector_rejected(self):
        with pytest.raises(ValueError):
            AggSpec("sum", "v", None)
