"""Tests for clustering (§9) and declared object schemas."""

import datetime
from types import SimpleNamespace

import pytest

from repro import P
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray

ROW = Schema([Field("k", "int"), Field("v", "float")], name="Row")


def make_array(n=2000):
    return StructArray.from_rows(ROW, [((i * 37) % 100, float(i)) for i in range(n)])


class TestClusterBy:
    def test_physically_sorted_copy(self):
        array = make_array(50)
        clustered = array.cluster_by("k")
        keys = list(clustered.column("k"))
        assert keys == sorted(keys)
        assert clustered.clustering == "k"
        assert array.clustering is None  # original untouched
        assert len(array) == len(clustered)

    def test_unknown_field_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            make_array(5).cluster_by("zzz")

    @pytest.mark.parametrize(
        "predicate, pyop",
        [
            (lambda s: s.k < P("t"), lambda k, t: k < t),
            (lambda s: s.k <= P("t"), lambda k, t: k <= t),
            (lambda s: s.k > P("t"), lambda k, t: k > t),
            (lambda s: s.k >= P("t"), lambda k, t: k >= t),
            (lambda s: s.k == P("t"), lambda k, t: k == t),
        ],
    )
    def test_range_results_match_unclustered(self, predicate, pyop):
        array = make_array()
        clustered = array.cluster_by("k")
        provider = QueryProvider()
        threshold = 42

        def run(source):
            return (
                from_struct_array(source)
                .using("native", provider)
                .where(predicate)
                .with_params(t=threshold)
                .sum(lambda s: s.v)
            )

        assert run(array) == pytest.approx(run(clustered))
        expected = sum(
            float(i) for i in range(2000) if pyop((i * 37) % 100, threshold)
        )
        assert run(clustered) == pytest.approx(expected)

    def test_generated_code_uses_searchsorted(self):
        clustered = make_array().cluster_by("k")
        provider = QueryProvider()
        query = (
            from_struct_array(clustered)
            .using("native", provider)
            .where(lambda s: s.k < P("t"))
        )
        info = provider.compile_info(query.expr, [clustered], "native")
        assert "searchsorted" in info.source_code

    def test_residual_conjunct_still_applied(self):
        clustered = make_array().cluster_by("k")
        count = (
            from_struct_array(clustered)
            .where(lambda s: (s.k < P("t")) & (s.v > 500.0))
            .with_params(t=50)
            .count()
        )
        expected = sum(
            1 for i in range(2000) if (i * 37) % 100 < 50 and float(i) > 500.0
        )
        assert count == expected

    def test_clustering_changes_cache_key(self):
        array = make_array()
        provider = QueryProvider()

        def compile_for(source):
            query = (
                from_struct_array(source)
                .using("native", provider)
                .where(lambda s: s.k < P("t"))
            )
            return provider.compile_info(query.expr, [source], "native")

        plain = compile_for(array)
        clustered = compile_for(array.cluster_by("k"))
        assert "searchsorted" not in plain.source_code
        assert "searchsorted" in clustered.source_code

    def test_clustered_dates(self):
        schema = Schema([Field("d", "date"), Field("v", "int")], name="D")
        rows = [
            (datetime.date(1995, 1, 1) + datetime.timedelta(days=(i * 13) % 300), i)
            for i in range(500)
        ]
        array = StructArray.from_rows(schema, rows).cluster_by("d")
        cutoff = datetime.date(1995, 5, 1)
        count = (
            from_struct_array(array)
            .where(lambda s: s.d <= P("c"))
            .with_params(c=cutoff)
            .count()
        )
        expected = sum(1 for d, _ in rows if d <= cutoff)
        assert count == expected


class TestDeclaredSchemas:
    def _schema(self):
        return Schema(
            [Field("name", "str", 4), Field("v", "float")], name="Declared"
        )

    def test_from_iterable_uses_declared_schema(self):
        schema = self._schema()
        # sampling would under-size this field: first elements are short,
        # a late one is long — the declared width covers it
        items = [SimpleNamespace(name="a", v=1.0) for _ in range(1500)]
        items.append(SimpleNamespace(name="abcd", v=2.0))
        query = from_iterable(items, schema=schema).using("hybrid").sum(
            lambda s: s.v
        )
        assert query == pytest.approx(1500 * 1.0 + 2.0)

    def test_declared_schema_sets_token(self):
        schema = self._schema()
        q = from_iterable([SimpleNamespace(name="a", v=1.0)], schema=schema)
        assert q.expr.schema_token == schema.token

    def test_qlist_carries_schema(self):
        from repro.query import QList

        schema = self._schema()
        ql = QList([SimpleNamespace(name="a", v=2.0)], schema=schema)
        assert ql.schema is schema
        assert ql.as_query("hybrid").sum(lambda s: s.v) == pytest.approx(2.0)
