"""The adaptive execution layer: store durability, chooser determinism,
fail-open behavior, and the feedback wiring into the serving stack.

The profile store's contract is load-bearing for everything else here:
it must survive concurrent writers (thread-safety), garbage on disk
(fail-open), records from other schema versions (skew tolerance), and it
must serialize deterministically (two processes replaying the same
observations produce byte-identical files — asserted via subprocesses).
On top of that, the decision tiers are exercised end to end: estimate →
profile across repeated runs, the rendered ``source=profile`` evidence
in ``explain_analyze``, admission-degradation feedback, and the
mid-flight morsel re-decision.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path
from types import SimpleNamespace

import repro
from repro.adaptive import (
    AdaptiveChooser,
    AdaptiveController,
    ProfileStore,
    RowEstimate,
    SCHEMA_VERSION,
    adaptive_enabled_from_env,
    epsilon_from_env,
    redecide_morsel,
    seed_configuration,
    store_path_from_env,
)
from repro.observability.metrics import METRICS, MetricsRegistry
from repro.query import QueryProvider, from_iterable
from repro.service.admission import AdmissionController

KEY = "deadbeefdeadbeefcafe"


def _rows(n=400):
    return [SimpleNamespace(a=i, g=i % 7, v=i * 0.25) for i in range(n)]


def _query(provider, controller, rows=None):
    return (
        from_iterable(rows if rows is not None else _rows())
        .where(lambda r: r.g > 2)
        .select(lambda r: r.a)
        .using("compiled", provider, adaptive=controller)
    )


# ---------------------------------------------------------------------------
# Store durability
# ---------------------------------------------------------------------------


def test_store_concurrent_writers(tmp_path):
    """10 threads x 50 records interleave without losing or mangling any."""
    path = tmp_path / "store.jsonl"
    store = ProfileStore(str(path))
    threads = [
        threading.Thread(
            target=lambda tid=tid: [
                store.record_run(
                    f"key-{tid % 3}", "compiled", 1, 0, 1.0 + i, rows=i
                )
                for i in range(50)
            ]
        )
        for tid in range(10)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    store.close()

    # every line is one complete JSON record (single-write appends)
    lines = path.read_text().splitlines()
    assert len(lines) == 500
    for line in lines:
        assert json.loads(line)["v"] == SCHEMA_VERSION

    reloaded = ProfileStore(str(path))
    assert len(reloaded) == 3
    assert sum(reloaded.profile(f"key-{k}").runs for k in range(3)) == 500


def test_store_corrupt_and_truncated_lines(tmp_path):
    """Garbage lines are skipped and counted; intact records still load."""
    path = tmp_path / "store.jsonl"
    seed = ProfileStore(str(path))
    seed.record_run(KEY, "compiled", 1, 0, 2.5, rows=10, estimated=12)
    seed.record_run(KEY, "compiled", 2, 8192, 0.9, rows=10, estimated=12)
    seed.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "kind": "run", "key"\n')  # crash mid-append
        handle.write("not json at all\n")

    registry = MetricsRegistry()
    store = ProfileStore(str(path), metrics=registry)
    assert registry.counter("adaptive.store_errors").value == 2
    profile = store.profile(KEY)
    assert profile is not None and profile.runs == 2
    assert profile.best().config == ("compiled", 2, 8192)

    # and the chooser still decides from what survived
    decision = AdaptiveChooser(store, epsilon=0.0, metrics=registry).decide(
        KEY, "compiled", ("compiled",), None, 65536
    )
    assert decision.source == "profile"
    assert decision.workers == 2 and decision.morsel == 8192


def test_store_unreadable_path_fails_open(tmp_path):
    """A store pointed at a directory serves memory-only, never raises."""
    registry = MetricsRegistry()
    store = ProfileStore(str(tmp_path), metrics=registry)  # path IS a dir
    assert registry.counter("adaptive.store_errors").value == 1
    store.record_run(KEY, "compiled", 1, 0, 1.5, rows=5)
    # the append failed (counted), but the in-memory profile took the run
    assert registry.counter("adaptive.store_errors").value == 2
    assert store.profile(KEY).runs == 1
    chooser = AdaptiveChooser(store, epsilon=0.0, metrics=registry)
    assert chooser.decide(KEY, "compiled", ("compiled",), None, 65536).source == (
        "profile"
    )
    # unknown key, no estimate: the static landing pad
    assert chooser.decide("nope", "compiled", ("compiled",), None, 65536).source == (
        "static-fallback"
    )


def test_store_schema_version_skew(tmp_path):
    """Records from another schema version are counted and skipped."""
    path = tmp_path / "store.jsonl"
    future = {
        "v": SCHEMA_VERSION + 1,
        "kind": "run",
        "key": KEY,
        "engine": "compiled",
        "workers": 64,
        "morsel": 1,
        "ms": 0.001,
    }
    good = {
        "v": SCHEMA_VERSION,
        "kind": "run",
        "key": KEY,
        "engine": "compiled",
        "workers": 2,
        "morsel": 8192,
        "ms": 1.5,
    }
    path.write_text(
        json.dumps(future) + "\n" + json.dumps(good) + "\n", encoding="utf-8"
    )
    registry = MetricsRegistry()
    store = ProfileStore(str(path), metrics=registry)
    assert registry.counter("adaptive.store_skew").value == 1
    assert registry.counter("adaptive.store_errors").value == 0
    profile = store.profile(KEY)
    assert profile.runs == 1 and profile.best().workers == 2


# ---------------------------------------------------------------------------
# Determinism across processes
# ---------------------------------------------------------------------------

_DETERMINISM_SCRIPT = """
import sys
from repro.adaptive import AdaptiveChooser, AdaptiveController, ProfileStore

store = ProfileStore(sys.argv[1])
controller = AdaptiveController(
    store=store, chooser=AdaptiveChooser(store, epsilon=0.0, max_workers=8)
)
key = "deadbeefdeadbeefcafe"
for i, (engine, workers, morsel, ms) in enumerate(
    [
        ("compiled", 1, 0, 2.5),
        ("compiled", 2, 8192, 1.25),
        ("hybrid", 2, 8192, 1.75),
        ("compiled", 2, 8192, 1.0),
    ]
):
    store.record_run(key, engine, workers, morsel, ms, rows=64 + i, estimated=50)
decision = controller.peek(
    key, "compiled", ("compiled", "hybrid"), None, 65536
)
store.close()
sys.stdout.write(decision.describe())
"""


def _run_determinism_process(store_path: Path) -> str:
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_ADAPTIVE_EPSILON", None)
    result = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT, str(store_path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_chooser_deterministic_across_processes(tmp_path):
    """epsilon=0: identical observations => byte-identical store files and
    identical decisions, in two separate interpreter processes."""
    out_a = _run_determinism_process(tmp_path / "a.jsonl")
    out_b = _run_determinism_process(tmp_path / "b.jsonl")
    assert out_a == out_b
    assert "source=profile" in out_a
    assert "engine=compiled workers=2 morsel=8192" in out_a
    assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()


# ---------------------------------------------------------------------------
# Decision tiers and cost seeding
# ---------------------------------------------------------------------------


def test_decision_tiers_estimate_then_profile():
    store = ProfileStore(None)
    controller = AdaptiveController(
        store=store, chooser=AdaptiveChooser(store, epsilon=0.0, max_workers=8)
    )
    estimate = RowEstimate(driver_rows=200_000, output_rows=50_000)
    first = controller.decide(KEY, "compiled", ("compiled",), estimate, 65536)
    assert first.source == "estimate"
    assert first.workers and first.workers > 1  # large input: fan out
    controller.observe(
        KEY, first, "compiled", first.workers, first.morsel or 0, 3.5, 50_000,
        estimate,
    )
    second = controller.decide(KEY, "compiled", ("compiled",), estimate, 65536)
    assert second.source == "profile"
    assert second.workers == first.workers


def test_seed_configuration_small_inputs_stay_sequential():
    workers, morsel = seed_configuration(
        RowEstimate(driver_rows=1000, output_rows=500), 8, 65536
    )
    assert (workers, morsel) == (1, 65536)
    workers, _ = seed_configuration(
        RowEstimate(driver_rows=1_000_000, output_rows=100), 8, 65536
    )
    assert workers == 8


def test_redecide_morsel_divergence():
    # within 4x of the estimate: keep the current size
    assert (
        redecide_morsel(65536, 0.5, 0.3, remaining_rows=10**7, workers=2) is None
    )
    # output far denser than estimated: shrink the morsels
    shrunk = redecide_morsel(65536, 0.9, 0.05, remaining_rows=10**7, workers=2)
    assert shrunk is not None and shrunk < 65536
    # output far sparser than estimated: grow them
    grown = redecide_morsel(65536, 0.001, 0.5, remaining_rows=10**7, workers=2)
    assert grown is not None and grown > 65536


def test_parallel_morsel_redecision_end_to_end():
    """An estimate off by >4x re-partitions mid-flight; results unchanged."""
    provider = QueryProvider()
    store = ProfileStore(None)
    controller = AdaptiveController(
        store=store, chooser=AdaptiveChooser(store, epsilon=0.0)
    )
    rows = _rows(400)
    # the default selectivity estimate expects ~a third of the rows; this
    # predicate keeps none, so observed/estimated diverges far beyond 4x
    static = (
        from_iterable(rows)
        .where(lambda r: r.g > 100)
        .select(lambda r: r.a)
        .using("compiled", provider)
        .to_list()
    )
    before = METRICS.counter("parallel.morsels_redecided").value
    adaptive = (
        from_iterable(rows)
        .where(lambda r: r.g > 100)
        .select(lambda r: r.a)
        .using("compiled", provider, adaptive=controller)
        .in_parallel(2, 37)
        .to_list()
    )
    assert adaptive == static == []
    assert METRICS.counter("parallel.morsels_redecided").value == before + 1


# ---------------------------------------------------------------------------
# Feedback wiring: admission degradation
# ---------------------------------------------------------------------------


def test_admission_degradation_feeds_the_profile():
    store = ProfileStore(None)
    controller = AdaptiveController(store=store)
    admission = AdmissionController(
        slots=1, metrics=MetricsRegistry(), adaptive_controller=controller
    )
    held = admission.acquire()
    grants = []
    ready = threading.Event()

    def degraded_waiter():
        ticket = admission.acquire(parallelism=8)
        grants.append(ticket.parallelism)
        ticket.release()

    def queue_filler():
        ready.wait()
        ticket = admission.acquire()
        ticket.release()

    first = threading.Thread(target=degraded_waiter)
    second = threading.Thread(target=queue_filler)
    first.start()
    while admission.queue_depth < 1:
        pass
    second.start()
    ready.set()
    while admission.queue_depth < 2:
        pass
    held.release()  # admits the waiter with one request still queued
    first.join()
    second.join()

    assert grants == [4]  # 8 requested, halved by the queue behind it
    assert store.degrade_ratios() == [0.5]
    assert controller.load_factor < 1.0
    # a fresh controller over the same store starts out load-aware
    assert AdaptiveController(store=store).load_factor < 1.0


# ---------------------------------------------------------------------------
# The serving surface: explain evidence and env plumbing
# ---------------------------------------------------------------------------


def test_explain_analyze_shows_profile_informed_decision():
    """The acceptance check: a repeated query's report says where the
    decision came from, and repetition moves it onto the profile tier."""
    provider = QueryProvider()
    store = ProfileStore(None)
    controller = AdaptiveController(
        store=store, chooser=AdaptiveChooser(store, epsilon=0.0)
    )
    query = _query(provider, controller)

    first = query.explain_analyze()
    assert "source=estimate" in first.adaptive or (
        "source=static-fallback" in first.adaptive
    )
    second = query.explain_analyze()
    assert "source=profile" in second.adaptive
    assert "adaptive: engine=" in second.render()
    assert "query.decide" in second.phases

    # the dry-run EXPLAIN peeks at the same decision without mutating it
    rendered = query.explain()
    assert "adaptive: engine=" in rendered and "source=profile" in rendered
    runs = store.profile(next(iter(store._profiles))).runs
    assert query.explain() == rendered
    assert store.profile(next(iter(store._profiles))).runs == runs


def test_adaptive_false_forces_static(tmp_path):
    provider = QueryProvider()
    store = ProfileStore(str(tmp_path / "p.jsonl"))
    controller = AdaptiveController(store=store)
    query = _query(provider, controller)
    assert query.using("compiled", provider, adaptive=False).to_list() == (
        query.to_list()
    )
    # only the adaptive=controller execution observed anything
    assert len(store) == 1


def test_env_plumbing(monkeypatch):
    for value, expected in (
        ("1", True), ("true", True), ("ON", True), ("0", False), ("", False)
    ):
        monkeypatch.setenv("REPRO_ADAPTIVE", value)
        assert adaptive_enabled_from_env() is expected
    monkeypatch.setenv("REPRO_ADAPTIVE_STORE", ":memory:")
    assert store_path_from_env() is None
    monkeypatch.setenv("REPRO_ADAPTIVE_STORE", "/tmp/x.jsonl")
    assert store_path_from_env() == "/tmp/x.jsonl"
    monkeypatch.setenv("REPRO_ADAPTIVE_EPSILON", "0.5")
    assert epsilon_from_env() == 0.5
    monkeypatch.setenv("REPRO_ADAPTIVE_EPSILON", "7")
    assert epsilon_from_env() == 1.0
    monkeypatch.setenv("REPRO_ADAPTIVE_EPSILON", "bogus")
    assert epsilon_from_env() == 0.05
