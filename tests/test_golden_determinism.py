"""Golden-source determinism: codegen is a pure function of the query.

Two fresh providers (separate caches, separate name allocators) given the
same query must emit byte-identical modules on every codegen engine.  This
pins down the whole lowering path — canonicalization, optimization, the
shared pipeline IR (CSE binding order, conjunct reordering, pipeline
numbering), and the printers — as deterministic, which the EXPLAIN goldens
and the compiled-artifact cache both rely on.
"""

import pytest

from repro import new
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray
from repro.tpch.datagen import TPCHData
from repro.tpch.queries import q1, q3

ENGINES = ("compiled", "native", "hybrid", "hybrid_buffered")

SCHEMA = Schema(
    [
        Field("id", "int"),
        Field("g", "int"),
        Field("v", "float"),
        Field("s", "str", 4),
    ],
    name="Det",
)
ARRAY = StructArray.from_rows(
    SCHEMA, [(i, i % 5, i * 0.25, "ab") for i in range(64)]
)
OBJECTS = ARRAY.to_objects()


@pytest.fixture(scope="module")
def tpch():
    return TPCHData(scale=0.01, seed=7)


def _source(engine, provider):
    if engine == "native":
        return from_struct_array(ARRAY).using(engine, provider)
    return from_iterable(OBJECTS, schema=SCHEMA).using(engine, provider)


def _shapes(engine, provider):
    base = _source(engine, provider)
    return {
        "filter-project": base.where(lambda r: r.g > 1).select(
            lambda r: new(i=r.id, y=r.v + r.v)
        ),
        "cse-conjuncts": base.where(
            lambda r: ((r.v + r.v) > 1.0) & ((r.v + r.v) < 20.0)
        ).select(lambda r: r.id),
        "group-sort": base.where(lambda r: r.id >= 3)
        .group_by(
            lambda r: r.g,
            lambda grp: new(k=grp.key, t=grp.sum(lambda r: r.v)),
        )
        .order_by(lambda p: p.k),
    }


@pytest.mark.parametrize("engine", ENGINES)
def test_fresh_providers_emit_identical_modules(engine):
    sources = {}
    for run in range(2):
        provider = QueryProvider()
        for name, query in _shapes(engine, provider).items():
            compiled = provider.compile_info(query.expr, query.sources, engine)
            sources.setdefault(name, []).append(compiled.source_code)
    for name, (first, second) in sources.items():
        assert first == second, (
            f"{engine}/{name}: generated source differs across fresh "
            f"providers"
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_tpch_modules_deterministic(engine, tpch):
    emitted = []
    for run in range(2):
        provider = QueryProvider()
        for builder in (q1, q3):
            query = builder(tpch, engine, provider=provider)
            compiled = provider.compile_info(query.expr, query.sources, engine)
            emitted.append(compiled.source_code)
    half = len(emitted) // 2
    assert emitted[:half] == emitted[half:]
