"""The CI benchmark gate must tolerate cross-version payloads.

``check_bench_regression.py`` compares a fresh run against a committed
baseline; the two JSON files routinely come from different versions of
the sweep (new engines, renamed phase keys, cells a crashed sweep never
wrote).  The gate fails on real regressions and coverage loss — but a
*shape* mismatch (missing per-phase keys, malformed cells) must warn and
carry on, never crash or block the merge.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py",
)
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def _payload(ms_by_engine, phases=None, extra_cells=()):
    cells = []
    for engine, ms in ms_by_engine.items():
        for sel in (0.1, 0.5):
            cells.append(
                {"figure": "fig07", "engine": engine, "selectivity": sel, "ms": ms}
            )
    cells.extend(extra_cells)
    payload = {"cells": cells}
    if phases is not None:
        payload["phases"] = phases
    return payload


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


PHASES = {"compile.compiled.codegen_seconds": {"mean_ms": 1.0, "count": 4}}


class TestHappyPath:
    def test_identical_runs_pass(self, tmp_path, capsys):
        payload = _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES)
        base = _write(tmp_path, "base.json", payload)
        cur = _write(tmp_path, "cur.json", payload)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_real_regression_still_fails(self, tmp_path, capsys):
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(
            tmp_path, "cur.json", _payload({"linq": 100.0, "compiled": 50.0})
        )
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestShapeTolerance:
    def test_malformed_cells_warn_and_skip(self, tmp_path, capsys):
        # cells missing required keys (older sweep format) are skipped
        bad_cells = [
            {"figure": "fig07", "engine": "native"},  # no selectivity/ms
            {"ms": 5.0},
            "not-even-a-dict",
        ]
        payload = _payload(
            {"linq": 100.0, "compiled": 10.0}, extra_cells=bad_cells
        )
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(tmp_path, "cur.json", payload)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "skipped 3 malformed cell(s)" in out

    def test_phase_missing_from_current_warns_not_fails(self, tmp_path, capsys):
        base = _write(
            tmp_path,
            "base.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES),
        )
        cur = _write(
            tmp_path,
            "cur.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases={}),
        )
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "warning:" in out and "missing" in out

    def test_baseline_phase_without_mean_ms_is_skipped(self, tmp_path, capsys):
        phases = {
            "compile.compiled.codegen_seconds": {"count": 4},  # no mean_ms
            "compile.native.codegen_seconds": "garbage",  # not a dict
        }
        base = _write(
            tmp_path,
            "base.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=phases),
        )
        cur = _write(
            tmp_path,
            "cur.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES),
        )
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "warning:" in capsys.readouterr().out

    def test_current_phase_without_mean_ms_counts_missing(self, tmp_path, capsys):
        cur_phases = {"compile.compiled.codegen_seconds": {"count": 4}}
        base = _write(
            tmp_path,
            "base.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES),
        )
        cur = _write(
            tmp_path,
            "cur.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=cur_phases),
        )
        # missing phase data: warn, don't block
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0

    def test_missing_benchmark_cell_is_still_coverage_loss(self, tmp_path):
        # shape tolerance must not swallow real coverage loss: an engine
        # disappearing from the run still fails the gate
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(tmp_path, "cur.json", _payload({"linq": 100.0}))
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 1

    def test_empty_payload_still_errors(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload({"linq": 100.0}))
        cur = _write(tmp_path, "cur.json", {"cells": ["junk"]})
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(base), "--current", str(cur)])


def _ab_payload(ms_by_engine, figure="fig11"):
    cells = []
    for engine, ms in ms_by_engine.items():
        for sel in (0.1, 0.5):
            cells.append(
                {"figure": figure, "engine": engine, "selectivity": sel, "ms": ms}
            )
    return {"cells": cells}


def _ab_args(tmp_path, static, adaptive):
    s = _write(tmp_path, "static.json", static)
    a = _write(tmp_path, "adaptive.json", adaptive)
    return ["--ab-static", str(s), "--ab-adaptive", str(a)]


class TestABGate:
    """The adaptive-vs-static A/B gate: linq-drift-corrected medians."""

    def test_identical_legs_pass(self, tmp_path, capsys):
        payload = _ab_payload({"linq": 50.0, "compiled": 10.0})
        assert gate.main(_ab_args(tmp_path, payload, payload)) == 0
        assert "OK: adaptive execution" in capsys.readouterr().out

    def test_runner_drift_does_not_fail_the_gate(self, tmp_path, capsys):
        # the whole adaptive leg ran 40% slower (shared-runner drift):
        # linq — which never consults the adaptive path — slows down by
        # the same factor as every other engine, so after drift
        # correction nothing regresses
        static = _ab_payload({"linq": 50.0, "compiled": 10.0, "hybrid": 20.0})
        adaptive = _ab_payload({"linq": 70.0, "compiled": 14.0, "hybrid": 28.0})
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 0
        out = capsys.readouterr().out
        assert "(drift anchor)" in out and "OK: adaptive execution" in out

    def test_real_regression_survives_drift_correction(self, tmp_path, capsys):
        # compiled is 2x slower on top of the 40% runner drift — the
        # correction removes the drift and the genuine 2x still fails
        static = _ab_payload({"linq": 50.0, "compiled": 10.0})
        adaptive = _ab_payload({"linq": 70.0, "compiled": 28.0})
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_sub_floor_excess_is_noise(self, tmp_path, capsys):
        # +30% on a 2ms cell is 0.6ms of excess — under the 1ms floor,
        # flagged but not failed
        static = _ab_payload({"linq": 50.0, "compiled": 2.0})
        adaptive = _ab_payload({"linq": 50.0, "compiled": 2.6})
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 0
        assert "(within noise floor)" in capsys.readouterr().out

    def test_linq_cells_anchor_but_never_fail(self, tmp_path, capsys):
        # a figure whose only delta is on linq itself cannot regress —
        # linq bypasses adaptivity by construction
        static = _ab_payload({"linq": 50.0, "compiled": 10.0})
        adaptive = _ab_payload({"linq": 90.0, "compiled": 18.0})
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 0

    def test_figure_without_linq_compares_raw(self, tmp_path, capsys):
        # no linq anchor -> drift factor 1.0, raw milliseconds gate
        static = _ab_payload({"compiled": 10.0})
        adaptive = _ab_payload({"compiled": 28.0})
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_adaptive_cell_is_coverage_loss(self, tmp_path, capsys):
        static = _ab_payload({"linq": 50.0, "compiled": 10.0})
        adaptive = _ab_payload({"linq": 50.0})
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 1
        assert "missing from the" in capsys.readouterr().out

    def test_elision_ablation_figures_are_skipped(self, tmp_path, capsys):
        # the fig07_elision_* cells exist for the within-run elision
        # gate; between A/B legs they are single-drain noise and the
        # same shapes are already covered by fig07_aggregation
        ablation = "fig07_elision_on"
        static = _ab_payload({"linq": 50.0, "compiled": 10.0})
        static["cells"].extend(
            _ab_payload({"linq": 50.0, "compiled": 10.0}, figure=ablation)["cells"]
        )
        adaptive = _ab_payload({"linq": 50.0, "compiled": 10.0})
        adaptive["cells"].extend(
            _ab_payload({"linq": 50.0, "compiled": 40.0}, figure=ablation)["cells"]
        )
        assert gate.main(_ab_args(tmp_path, static, adaptive)) == 0
        assert "fig07_elision_on" not in capsys.readouterr().out

    def test_ab_flags_must_come_together(self, tmp_path):
        payload = _ab_payload({"linq": 50.0})
        path = _write(tmp_path, "static.json", payload)
        with pytest.raises(SystemExit):
            gate.main(["--ab-static", str(path)])


def _dist_cells(thread_ms, dist_ms):
    cells = []
    for sel in (0.2, 0.6):
        cells.append(
            {
                "figure": "fig07_dist",
                "engine": "thread4",
                "selectivity": sel,
                "ms": thread_ms,
            }
        )
        cells.append(
            {
                "figure": "fig07_dist",
                "engine": "dist4",
                "selectivity": sel,
                "ms": dist_ms,
            }
        )
    return cells


class TestDistributedGate:
    """check_dist: within-run thread-vs-process speedup with honest skips."""

    def _paths(self, tmp_path, thread_ms, dist_ms, scale, cpus):
        payload = _payload(
            {"linq": 100.0, "compiled": 10.0},
            extra_cells=_dist_cells(thread_ms, dist_ms),
        )
        payload["scale"] = scale
        payload["cpus"] = cpus
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(tmp_path, "cur.json", payload)
        return base, cur

    def test_speedup_below_floor_fails(self, tmp_path, capsys):
        base, cur = self._paths(tmp_path, 100.0, 90.0, scale=0.1, cpus=4)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 1
        out = capsys.readouterr().out
        assert "distributed execution beats the thread tier by less" in out

    def test_speedup_above_floor_passes(self, tmp_path, capsys):
        base, cur = self._paths(tmp_path, 100.0, 50.0, scale=0.1, cpus=4)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "distributed-execution check" in capsys.readouterr().out

    def test_single_core_skips_with_warning(self, tmp_path, capsys):
        # a 1-cpu runner timeshares the worker processes: a sub-1.5x
        # speedup there is physics, not a regression
        base, cur = self._paths(tmp_path, 100.0, 120.0, scale=0.1, cpus=1)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "distributed gate skipped" in capsys.readouterr().out

    def test_smoke_scale_skips_with_warning(self, tmp_path, capsys):
        base, cur = self._paths(tmp_path, 100.0, 120.0, scale=0.003, cpus=4)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "distributed gate skipped" in capsys.readouterr().out

    def test_missing_cells_warn_not_fail(self, tmp_path, capsys):
        payload = _payload({"linq": 100.0, "compiled": 10.0})
        payload["scale"] = 0.1
        payload["cpus"] = 4
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(tmp_path, "cur.json", payload)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "no fig07_dist cells" in capsys.readouterr().out

    def test_dist_min_speedup_flag(self, tmp_path):
        base, cur = self._paths(tmp_path, 100.0, 90.0, scale=0.1, cpus=4)
        args = ["--baseline", str(base), "--current", str(cur)]
        assert gate.main(args + ["--dist-min-speedup", "1.0"]) == 0
        assert gate.main(args + ["--dist-min-speedup", "2.0"]) == 1

    def test_dist_only_mode_needs_no_baseline(self, tmp_path, capsys):
        payload = _payload({}, extra_cells=_dist_cells(100.0, 50.0))
        payload["scale"] = 0.1
        payload["cpus"] = 4
        cur = _write(tmp_path, "dist.json", payload)
        assert gate.main(["--dist-current", str(cur)]) == 0
        assert "OK: distributed gate passed" in capsys.readouterr().out

    def test_dist_only_mode_fails_on_slow_dist(self, tmp_path, capsys):
        payload = _payload({}, extra_cells=_dist_cells(100.0, 90.0))
        payload["scale"] = 0.1
        payload["cpus"] = 4
        cur = _write(tmp_path, "dist.json", payload)
        assert gate.main(["--dist-current", str(cur)]) == 1
        assert "FAIL" in capsys.readouterr().out
