"""The CI benchmark gate must tolerate cross-version payloads.

``check_bench_regression.py`` compares a fresh run against a committed
baseline; the two JSON files routinely come from different versions of
the sweep (new engines, renamed phase keys, cells a crashed sweep never
wrote).  The gate fails on real regressions and coverage loss — but a
*shape* mismatch (missing per-phase keys, malformed cells) must warn and
carry on, never crash or block the merge.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py",
)
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def _payload(ms_by_engine, phases=None, extra_cells=()):
    cells = []
    for engine, ms in ms_by_engine.items():
        for sel in (0.1, 0.5):
            cells.append(
                {"figure": "fig07", "engine": engine, "selectivity": sel, "ms": ms}
            )
    cells.extend(extra_cells)
    payload = {"cells": cells}
    if phases is not None:
        payload["phases"] = phases
    return payload


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


PHASES = {"compile.compiled.codegen_seconds": {"mean_ms": 1.0, "count": 4}}


class TestHappyPath:
    def test_identical_runs_pass(self, tmp_path, capsys):
        payload = _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES)
        base = _write(tmp_path, "base.json", payload)
        cur = _write(tmp_path, "cur.json", payload)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_real_regression_still_fails(self, tmp_path, capsys):
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(
            tmp_path, "cur.json", _payload({"linq": 100.0, "compiled": 50.0})
        )
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestShapeTolerance:
    def test_malformed_cells_warn_and_skip(self, tmp_path, capsys):
        # cells missing required keys (older sweep format) are skipped
        bad_cells = [
            {"figure": "fig07", "engine": "native"},  # no selectivity/ms
            {"ms": 5.0},
            "not-even-a-dict",
        ]
        payload = _payload(
            {"linq": 100.0, "compiled": 10.0}, extra_cells=bad_cells
        )
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(tmp_path, "cur.json", payload)
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "skipped 3 malformed cell(s)" in out

    def test_phase_missing_from_current_warns_not_fails(self, tmp_path, capsys):
        base = _write(
            tmp_path,
            "base.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES),
        )
        cur = _write(
            tmp_path,
            "cur.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases={}),
        )
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "warning:" in out and "missing" in out

    def test_baseline_phase_without_mean_ms_is_skipped(self, tmp_path, capsys):
        phases = {
            "compile.compiled.codegen_seconds": {"count": 4},  # no mean_ms
            "compile.native.codegen_seconds": "garbage",  # not a dict
        }
        base = _write(
            tmp_path,
            "base.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=phases),
        )
        cur = _write(
            tmp_path,
            "cur.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES),
        )
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "warning:" in capsys.readouterr().out

    def test_current_phase_without_mean_ms_counts_missing(self, tmp_path, capsys):
        cur_phases = {"compile.compiled.codegen_seconds": {"count": 4}}
        base = _write(
            tmp_path,
            "base.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=PHASES),
        )
        cur = _write(
            tmp_path,
            "cur.json",
            _payload({"linq": 100.0, "compiled": 10.0}, phases=cur_phases),
        )
        # missing phase data: warn, don't block
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 0

    def test_missing_benchmark_cell_is_still_coverage_loss(self, tmp_path):
        # shape tolerance must not swallow real coverage loss: an engine
        # disappearing from the run still fails the gate
        base = _write(
            tmp_path, "base.json", _payload({"linq": 100.0, "compiled": 10.0})
        )
        cur = _write(tmp_path, "cur.json", _payload({"linq": 100.0}))
        assert gate.main(["--baseline", str(base), "--current", str(cur)]) == 1

    def test_empty_payload_still_errors(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload({"linq": 100.0}))
        cur = _write(tmp_path, "cur.json", {"cells": ["junk"]})
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(base), "--current", str(cur)])
