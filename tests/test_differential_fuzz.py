"""Differential fuzz harness: every engine × every parallelism agrees.

A seeded random query generator draws shapes over the expression builder
(filters, projections, inner/outer/semi/anti joins, bag-semantics set
operations, group-by + aggregates, sort, take, distinct, scalar terminals)
and executes each query on all four compiled engines and
every parallelism / morsel-size combination, asserting **exact** agreement
with the interpreted ``linq`` baseline.  Seeds are deterministic, so a CI
failure reproduces locally by running the same test id.

Float columns hold multiples of 0.25 in a small range, so every sum any
engine can form is exactly representable and summation order cannot perturb
results — bit-identity across morsel boundaries is a fair requirement.
"""

import random
import time

import pytest

from repro import new
from repro.errors import ExecutionError, UnsupportedQueryError
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray

# ---------------------------------------------------------------------------
# Fixed datasets (one seeded draw at import; the corpus varies queries)
# ---------------------------------------------------------------------------

T1 = Schema(
    [
        Field("id", "int"),
        Field("g", "int"),
        Field("v", "float"),
        Field("s", "str", 4),
    ],
    name="FuzzA",
)
T2 = Schema(
    [Field("k", "int"), Field("w", "float"), Field("t", "str", 4)],
    name="FuzzB",
)

_VOCAB = ["aa", "bb", "cc", "dd"]


def _exact_float(rng: random.Random) -> float:
    return rng.randrange(-200, 200) * 0.25


def _build_datasets():
    rng = random.Random(1234)
    rows_a = [
        (i, rng.randrange(6), _exact_float(rng), rng.choice(_VOCAB))
        for i in range(160)
    ]
    rows_b = [
        (rng.randrange(9), _exact_float(rng), rng.choice(_VOCAB))
        for _ in range(80)
    ]
    return StructArray.from_rows(T1, rows_a), StructArray.from_rows(T2, rows_b)


ARR_A, ARR_B = _build_datasets()
OBJ_A, OBJ_B = ARR_A.to_objects(), ARR_B.to_objects()

PROVIDER = QueryProvider()

ENGINES = ("compiled", "native", "hybrid", "hybrid_buffered")

#: (workers, morsel_size); morsel sizes deliberately coprime-ish with the
#: dataset sizes so boundaries fall mid-group, mid-tie, mid-everything
PARALLEL_CONFIGS = ((2, 37), (3, 64), (4, 13), (5, None))

SEEDS = range(60)
QUERIES_PER_SEED = 4  # 60 × 4 = 240 ≥ the 200-query acceptance floor

#: populated by the corpus test, asserted by test_corpus_size at the end
_COVERAGE = []


def _sources(engine):
    if engine == "native":
        outer = from_struct_array(ARR_A).using(engine, PROVIDER)
        inner = from_struct_array(ARR_B).using(engine, PROVIDER)
    else:
        outer = from_iterable(OBJ_A, schema=T1).using(engine, PROVIDER)
        inner = from_iterable(OBJ_B, schema=T2).using(engine, PROVIDER)
    return outer, inner


# ---------------------------------------------------------------------------
# Random query shapes — ALL randomness is drawn inside shape(rng), so the
# returned builder applies identical structure to every engine's sources
# ---------------------------------------------------------------------------


def _shape_filter(rng):
    c = rng.randrange(-1, 7)
    x = _exact_float(rng)
    word = rng.choice(_VOCAB)
    pred_mode = rng.randrange(3)
    out_mode = rng.randrange(3)

    def apply(outer, inner):
        if pred_mode == 0:
            q = outer.where(lambda r: r.g > c)
        elif pred_mode == 1:
            q = outer.where(lambda r: (r.v <= x) & (r.g != c))
        else:
            q = outer.where(lambda r: (r.v > x) | (r.s == word))
        if out_mode == 0:
            return q, None  # whole rows
        if out_mode == 1:
            return q.select(lambda r: new(i=r.id, y=r.v + r.v, s=r.s)), None
        return q.select(lambda r: r.v), None

    return apply


def _shape_join(rng):
    c = rng.randrange(0, 6)
    x = _exact_float(rng)
    filter_side = rng.randrange(3)

    def apply(outer, inner):
        left = outer.where(lambda r: r.g >= c) if filter_side == 0 else outer
        right = inner.where(lambda b: b.w < x) if filter_side == 1 else inner
        return (
            left.join(
                right,
                lambda r: r.g,
                lambda b: b.k,
                lambda r, b: new(i=r.id, v=r.v, w=b.w, t=b.t),
            ),
            None,
        )

    return apply


def _shape_group(rng):
    key_mode = rng.randrange(3)
    with_filter = rng.randrange(2)
    c = rng.randrange(0, 6)
    agg_mode = rng.randrange(3)

    def apply(outer, inner):
        q = outer.where(lambda r: r.g != c) if with_filter else outer
        key = (
            (lambda r: r.g)
            if key_mode == 0
            else (lambda r: r.s)
            if key_mode == 1
            else (lambda r: new(a=r.g, b=r.s))
        )
        if agg_mode == 0:

            def result(grp):
                return new(k=grp.key, n=grp.count(), t=grp.sum(lambda r: r.v))

        elif agg_mode == 1:

            def result(grp):
                return new(
                    k=grp.key,
                    lo=grp.min(lambda r: r.v),
                    hi=grp.max(lambda r: r.id),
                )

        else:

            def result(grp):
                return new(
                    k=grp.key,
                    a=grp.avg(lambda r: r.v),
                    t=grp.sum(lambda r: r.v),
                    n=grp.count(),
                )
        return q.group_by(key, result), None

    return apply


def _shape_sort(rng):
    x = _exact_float(rng)
    n = rng.randrange(1, 40)
    desc = rng.randrange(2)
    with_take = rng.randrange(2)

    def apply(outer, inner):
        q = outer.where(lambda r: r.v > x).select(
            lambda r: new(g=r.g, v=r.v, i=r.id)
        )
        # ties abound: g has six values, so morsel merges must preserve
        # the sequential tie order exactly
        q = q.order_by_desc(lambda p: p.g) if desc else q.order_by(lambda p: p.g)
        q = q.then_by(lambda p: p.v)
        return (q.take(n) if with_take else q), None

    return apply


def _shape_scalar(rng):
    terminal = rng.choice(["count", "sum", "min", "max", "average"])
    field = rng.randrange(2)
    c = rng.randrange(-1, 8)

    def apply(outer, inner):
        q = outer.where(lambda r: r.g < c)
        selector = None
        if terminal != "count":
            selector = (lambda r: r.v) if field else (lambda r: r.id)
        return q, (terminal, selector)

    return apply


def _shape_distinct(rng):
    pick = rng.randrange(2)

    def apply(outer, inner):
        if pick:
            return outer.select(lambda r: new(g=r.g, s=r.s)).distinct(), None
        return outer.select(lambda r: r.g).distinct(), None

    return apply


def _shape_group_sorted(rng):
    c = rng.randrange(0, 6)

    def apply(outer, inner):
        return (
            outer.where(lambda r: r.g <= c)
            .group_by(
                lambda r: r.s,
                lambda grp: new(k=grp.key, t=grp.sum(lambda r: r.v)),
            )
            .order_by(lambda p: p.k),
            None,
        )

    return apply


# -- dataflow-analysis stressors: divisions, sentinels, effectful lambdas --

_FUZZ_SINK = 0


def _impure_pred(r):
    # mutating on purpose: the effect analysis must force this query
    # sequential, yet the traced predicate itself stays deterministic
    global _FUZZ_SINK
    _FUZZ_SINK += 1
    return r.g >= 2


def _nondet_weight(r):
    # reads the clock but contributes exactly 0.0: value-stable across
    # engines while the effect analysis must still flag it
    return r.v + time.time() * 0.0


def _shape_division(rng):
    """Zero-crossing divisors: ``g - c`` hits zero for in-range ``c``, so
    every engine must raise the shared division-by-zero error; the guarded
    variant screens the zero out first (and may prove the guard away)."""
    c = rng.randrange(0, 6)
    guarded = rng.randrange(3)

    def apply(outer, inner):
        if guarded == 1:
            q = outer.where(lambda r: r.g > c)  # interval proof: g - c > 0
        elif guarded == 2:
            q = outer.where(lambda r: r.g != c)
        else:
            q = outer  # some row has g == c: division by zero
        return q.select(lambda r: new(i=r.id, q=r.v / (r.g - c))), None

    return apply


def _shape_sentinel(rng):
    """Nullable-ish sentinel columns: 0.0 in ``v`` marks a missing value;
    screened queries divide safely, unscreened ones hit the sentinel."""
    screened = rng.randrange(2)
    scale = rng.randrange(1, 5) * 0.25

    def apply(outer, inner):
        q = outer.where(lambda r: r.v > 0.0) if screened else outer
        return q.select(lambda r: new(i=r.id, u=(r.g * scale) / r.v)), None

    return apply


def _shape_effectful(rng):
    """Impure / nondeterministic lambdas: downgraded, never wrong."""
    use_nondet = rng.randrange(2)

    def apply(outer, inner):
        if use_nondet:
            return outer.select(_nondet_weight), None
        q = outer.where(_impure_pred)
        return q.select(lambda r: new(i=r.id, v=r.v)), None

    return apply


def _shape_outer_join(rng):
    """Left outer joins: defaults must appear exactly where probes miss.

    ``build_mode`` sweeps the build side from full through heavily
    filtered to empty — the empty build (every probe row unmatched,
    every output row the default record) is the classic kernel edge.
    """
    build_mode = rng.randrange(3)
    x = _exact_float(rng)
    sentinel = rng.randrange(-9, -1)

    def apply(outer, inner):
        if build_mode == 0:
            right = inner
        elif build_mode == 1:
            right = inner.where(lambda b: b.w < x)
        else:
            right = inner.where(lambda b: b.w < -1000.0)  # provably empty
        return (
            outer.left_outer_join(
                right,
                lambda r: r.g,
                lambda b: b.k,
                lambda r, b: new(i=r.id, w=b.w, t=b.t),
                default={"k": sentinel, "w": -0.25, "t": "zz"},
            ),
            None,
        )

    return apply


def _shape_semi_anti(rng):
    """Semi/anti joins: existence masks under skew.

    ``key_mode == 1`` collapses both key columns to a constant — the
    all-duplicate extreme where one build key decides every probe row —
    and ``build_mode == 2`` empties the build side (semi keeps nothing,
    anti keeps everything).
    """
    anti = rng.randrange(2)
    key_mode = rng.randrange(2)
    build_mode = rng.randrange(3)
    x = _exact_float(rng)

    def apply(outer, inner):
        if build_mode == 0:
            right = inner
        elif build_mode == 1:
            right = inner.where(lambda b: b.w >= x)
        else:
            right = inner.where(lambda b: b.w < -1000.0)  # provably empty
        if key_mode:
            lk, rk = (lambda r: r.g - r.g), (lambda b: b.k - b.k)
        else:
            lk, rk = (lambda r: r.g), (lambda b: b.k)
        method = outer.join_anti if anti else outer.join_semi
        q = method(right, lk, rk)
        return q.select(lambda r: new(i=r.id, v=r.v)), None

    return apply


def _shape_setop(rng):
    """Bag-semantics set operations over duplicate-heavy projections.

    Both sides project to the same record shape; the tiny key domains
    make every multiset count > 1, so probe-and-decrement order is fully
    exercised.  One arm empties the right side (intersect drops all,
    except keeps all); ``union`` (distinct) rides along via the shim.
    """
    op = rng.randrange(4)
    c = rng.randrange(0, 6)
    empty_right = rng.randrange(4) == 0

    def apply(outer, inner):
        left = outer.where(lambda r: r.g >= c).select(
            lambda r: new(a=r.g, s=r.s)
        )
        right = inner.where(lambda b: b.w < -1000.0) if empty_right else inner
        right = right.select(lambda b: new(a=b.k, s=b.t))
        if op == 0:
            return left.union_all(right), None
        if op == 1:
            return left.intersect(right), None
        if op == 2:
            return left.except_(right), None
        return left.union(right), None

    return apply


SHAPES = (
    _shape_filter,
    _shape_join,
    _shape_group,
    _shape_sort,
    _shape_scalar,
    _shape_distinct,
    _shape_group_sorted,
    _shape_division,
    _shape_sentinel,
    _shape_effectful,
    _shape_outer_join,
    _shape_semi_anti,
    _shape_setop,
)


# ---------------------------------------------------------------------------
# Execution + comparison
# ---------------------------------------------------------------------------


def _run(query, terminal, workers=None, morsel=None):
    """Outcome triple: kind + payload, errors folded in deterministically."""
    if workers is not None:
        query = query.in_parallel(workers, morsel)
    try:
        if terminal is None:
            return ("rows", list(query))
        name, selector = terminal
        args = [selector] if selector is not None else []
        return ("scalar", getattr(query, name)(*args))
    except UnsupportedQueryError:
        return ("unsupported", None)
    except ExecutionError as exc:
        return ("error", str(exc))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_corpus(seed):
    rng = random.Random(seed)
    for _ in range(QUERIES_PER_SEED):
        shape = rng.choice(SHAPES)
        apply = shape(rng)

        baseline_outer, baseline_inner = _sources("linq")
        baseline_q, baseline_t = apply(baseline_outer, baseline_inner)
        baseline = _run(baseline_q, baseline_t)
        assert baseline[0] in ("rows", "scalar", "error")

        for engine in ENGINES:
            outer, inner = _sources(engine)
            query, term = apply(outer, inner)
            sequential = _run(query, term)
            for workers, morsel in PARALLEL_CONFIGS:
                parallel = _run(query, term, workers, morsel)
                # the tentpole invariant: bit-identical to sequential for
                # every engine, worker count, and morsel size
                assert parallel == sequential, (
                    f"seed={seed} shape={shape.__name__} engine={engine} "
                    f"workers={workers} morsel={morsel}: "
                    f"parallel {parallel!r} != sequential {sequential!r}"
                )
            if sequential[0] == "error":
                # errors agree with the baseline by class; messages are
                # engine-worded except the shared empty-aggregate one
                assert baseline[0] == "error", (
                    f"seed={seed} shape={shape.__name__} engine={engine}: "
                    f"raised {sequential[1]!r} but linq returned {baseline!r}"
                )
            elif sequential[0] != "unsupported":
                assert sequential == baseline, (
                    f"seed={seed} shape={shape.__name__} engine={engine}: "
                    f"{sequential!r} != linq {baseline!r}"
                )
        _COVERAGE.append((seed, shape.__name__))


def test_corpus_size():
    """Runs after the corpus (file order): the acceptance floor held."""
    assert len(_COVERAGE) >= 200, len(_COVERAGE)
    # every shape family actually exercised
    assert {name for _, name in _COVERAGE} == {s.__name__ for s in SHAPES}


# ---------------------------------------------------------------------------
# Guard elision on/off equivalence — the proof-driven elision pass
# (REPRO_GUARD_ELISION) must never change results or error behaviour
# ---------------------------------------------------------------------------

ELISION_SHAPES = (_shape_division, _shape_sentinel, _shape_group)
ELISION_SEEDS = range(8)


@pytest.mark.parametrize("seed", ELISION_SEEDS)
def test_guard_elision_on_off_equivalence(seed, monkeypatch):
    """Acceptance batch: every engine × parallel config agrees with linq
    both with elision enabled and disabled, and the two settings agree
    with each other — including on queries that actually divide by zero."""
    rng = random.Random(9000 + seed)
    for shape in ELISION_SHAPES:
        apply = shape(rng)
        per_setting = []
        for setting in ("1", "0"):
            monkeypatch.setenv("REPRO_GUARD_ELISION", setting)
            baseline_q, baseline_t = apply(*_sources("linq"))
            baseline = _run(baseline_q, baseline_t)
            assert baseline[0] in ("rows", "scalar", "error")
            for engine in ENGINES:
                query, term = apply(*_sources(engine))
                sequential = _run(query, term)
                if sequential[0] == "unsupported":
                    continue
                if sequential[0] == "error":
                    assert baseline[0] == "error", (
                        f"seed={seed} shape={shape.__name__} engine={engine} "
                        f"elision={setting}: raised {sequential[1]!r} but "
                        f"linq returned {baseline!r}"
                    )
                else:
                    assert sequential == baseline, (
                        f"seed={seed} shape={shape.__name__} engine={engine} "
                        f"elision={setting}: {sequential!r} != {baseline!r}"
                    )
                for workers, morsel in PARALLEL_CONFIGS:
                    parallel = _run(query, term, workers, morsel)
                    assert parallel == sequential, (
                        f"seed={seed} shape={shape.__name__} engine={engine} "
                        f"elision={setting} workers={workers}: "
                        f"parallel {parallel!r} != {sequential!r}"
                    )
            per_setting.append(baseline)
        assert per_setting[0] == per_setting[1], (
            f"seed={seed} shape={shape.__name__}: elision flipped the result"
        )


# ---------------------------------------------------------------------------
# Effect-analysis acceptance: impure => sequential (reason visible),
# nondeterministic => uncacheable in the recycler
# ---------------------------------------------------------------------------


def test_impure_lambda_forced_sequential_with_reason():
    outer, _ = _sources("compiled")
    text = outer.where(_impure_pred).in_parallel(4).explain()
    assert "effects: mutating (writes global '_FUZZ_SINK')" in text
    assert (
        "parallel: sequential — impure lambda: "
        "mutating (writes global '_FUZZ_SINK')" in text
    )


def test_nondeterministic_lambda_visible_in_explain():
    outer, _ = _sources("compiled")
    text = outer.select(_nondet_weight).explain()
    assert (
        "effects: nondeterministic "
        "(references nondeterministic name 'time')" in text
    )


def test_nondeterministic_lambda_uncacheable_in_recycler():
    from repro.observability import METRICS
    from repro.query import RecyclingProvider

    provider = RecyclingProvider()
    skips = METRICS.counter("recycler.nondeterministic_skips").value
    query = (
        from_iterable(OBJ_A, schema=T1)
        .using("compiled", provider)
        .select(_nondet_weight)
    )
    first, second = list(query), list(query)
    assert first == second  # value-stable by construction
    assert provider.recycler_stats.hits == 0
    assert provider.recycler_stats.misses == 0
    assert (
        METRICS.counter("recycler.nondeterministic_skips").value == skips + 2
    )

    # a pure twin of the same shape recycles normally
    pure = (
        from_iterable(OBJ_A, schema=T1)
        .using("compiled", provider)
        .select(lambda r: r.v + 0.0)
    )
    list(pure), list(pure)
    assert provider.recycler_stats.misses == 1
    assert provider.recycler_stats.hits == 1


# ---------------------------------------------------------------------------
# CSE + predicate-reorder equivalence — the shared-IR optimization pass
# (subexpression hoisting, conjunct decomposition, cost-based reordering)
# must never change results on any engine
# ---------------------------------------------------------------------------


def _shape_cse(rng):
    """Shared-subexpression predicates and selectors."""
    x = _exact_float(rng)
    c = rng.randrange(0, 6)
    hi = x + rng.randrange(1, 80) * 0.25
    mode = rng.randrange(3)

    def apply(outer, inner):
        if mode == 0:
            # the same subexpression across two conjuncts of one predicate
            q = outer.where(
                lambda r: ((r.v + r.v) > x) & ((r.v + r.v) < hi)
            )
            return q.select(lambda r: r.id), None
        if mode == 1:
            # a subexpression repeated inside one conjunct
            q = outer.where(
                lambda r: ((r.v * 0.5 + r.g) > x) & ((r.v * 0.5 + r.g) != hi)
            )
            return q.select(lambda r: new(i=r.id, v=r.v)), None
        # duplicated subexpression inside one projection selector
        q = outer.where(lambda r: r.g != c)
        return (
            q.select(lambda r: new(a=(r.v + r.v) * 0.25, b=(r.v + r.v) * 0.5)),
            None,
        )

    return apply


def _shape_multi_conjunct(rng):
    """Many-conjunct predicates: decomposition + cheapest-first reorder."""
    c = rng.randrange(0, 6)
    x = _exact_float(rng)
    word = rng.choice(_VOCAB)
    lo = rng.randrange(0, 120)

    def apply(outer, inner):
        # mixes string equality (expensive) with integer/float comparisons
        # (cheap): the reorder pass runs the cheap conjuncts first
        q = outer.where(
            lambda r: (r.s == word) & (r.v > x) & (r.g != c) & (r.id >= lo)
        )
        return q.select(lambda r: new(i=r.id, v=r.v, s=r.s)), None

    return apply


CSE_SHAPES = (_shape_cse, _shape_multi_conjunct)
CSE_SEEDS = range(12)


@pytest.mark.parametrize("seed", CSE_SEEDS)
def test_cse_and_reorder_equivalence(seed):
    """Seeded batch: every engine agrees with linq on CSE/reorder shapes."""
    rng = random.Random(7000 + seed)
    for shape in CSE_SHAPES:
        apply = shape(rng)
        baseline_q, baseline_t = apply(*_sources("linq"))
        baseline = _run(baseline_q, baseline_t)
        assert baseline[0] in ("rows", "scalar", "error")
        for engine in ENGINES:
            query, term = apply(*_sources(engine))
            sequential = _run(query, term)
            if sequential[0] == "unsupported":
                continue
            assert sequential == baseline, (
                f"seed={seed} shape={shape.__name__} engine={engine}: "
                f"{sequential!r} != linq {baseline!r}"
            )
            for workers, morsel in PARALLEL_CONFIGS[:2]:
                parallel = _run(query, term, workers, morsel)
                assert parallel == sequential, (
                    f"seed={seed} shape={shape.__name__} engine={engine} "
                    f"workers={workers}: parallel disagrees"
                )


def test_cse_temp_hoisted_in_generated_source():
    """Acceptance: a duplicated subexpression is hoisted once in both the
    python (``__cse`` temp) and the native (single bound vector) module."""
    import re

    def build(engine):
        outer, _ = _sources(engine)
        return outer.where(
            lambda r: ((r.v + r.v) > 1.0) & ((r.v + r.v) < 50.0)
        ).select(lambda r: r.id)

    q = build("compiled")
    compiled = PROVIDER.compile_info(q.expr, q.sources, "compiled")
    assert re.search(r"__cse\d+ = ", compiled.source_code), compiled.source_code
    # the subexpression itself is emitted exactly once
    assert compiled.source_code.count(".v + ") == 1, compiled.source_code

    q = build("native")
    native = PROVIDER.compile_info(q.expr, q.sources, "native")
    # without CSE the column 'v' would be gathered four times; the hoisted
    # vector reads it twice (the two operands of the one shared addition)
    assert len(re.findall(r"\['v'\]", native.source_code)) == 2, (
        native.source_code
    )


# ---------------------------------------------------------------------------
# Adaptive-execution equivalence — the profile-driven engine/parallelism
# chooser (REPRO_ADAPTIVE) is an optimization layer and must never change
# results, on any engine, any parallel config, or any decision tier
# ---------------------------------------------------------------------------

ADAPTIVE_SHAPES = (
    _shape_filter,
    _shape_join,
    _shape_group,
    _shape_scalar,
    _shape_outer_join,
    _shape_setop,
)
ADAPTIVE_SEEDS = range(10)


@pytest.mark.parametrize("seed", ADAPTIVE_SEEDS)
def test_adaptive_equivalence(seed):
    """Seeded batch: adaptive execution agrees with static execution.

    Each query runs statically first, then three times through one
    shared adaptive controller — exercising the estimate tier, the
    profile tier (repeat runs), and, with epsilon forced high and a
    seeded RNG, the exploration tier (random engine/worker/morsel
    draws).  Every outcome, including the parallel configs, must equal
    the static one bit for bit.
    """
    from repro.adaptive import AdaptiveChooser, AdaptiveController, ProfileStore

    rng = random.Random(4000 + seed)
    store = ProfileStore(None)
    controller = AdaptiveController(
        store=store,
        chooser=AdaptiveChooser(store, epsilon=0.5, seed=4000 + seed),
    )
    for shape in ADAPTIVE_SHAPES:
        apply = shape(rng)
        for engine in ENGINES:
            outer, inner = _sources(engine)
            query, term = apply(outer, inner)
            static = _run(query, term)
            adaptive_query = query.using(engine, PROVIDER, adaptive=controller)
            for _ in range(3):
                got = _run(adaptive_query, term)
                assert got == static, (
                    f"seed={seed} shape={shape.__name__} engine={engine}: "
                    f"adaptive {got!r} != static {static!r}"
                )
            for workers, morsel in PARALLEL_CONFIGS[:2]:
                got = _run(adaptive_query, term, workers, morsel)
                assert got == static, (
                    f"seed={seed} shape={shape.__name__} engine={engine} "
                    f"workers={workers}: adaptive parallel {got!r} != "
                    f"static {static!r}"
                )
