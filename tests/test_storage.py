"""Tests for the storage substrate: schema, StructArray, ColumnSet, buffers."""

import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, SchemaError
from repro.storage import (
    BufferList,
    BufferPage,
    ColumnSet,
    Field,
    Schema,
    StreamingBuffer,
    StructArray,
    date_to_days,
    days_to_date,
)


CITY = Schema(
    [Field("name", "str", 16), Field("population", "int"), Field("area", "float")],
    name="City",
)


class TestField:
    def test_str_requires_size(self):
        with pytest.raises(SchemaError, match="requires a positive size"):
            Field("name", "str")

    def test_non_str_rejects_size(self):
        with pytest.raises(SchemaError, match="takes no size"):
            Field("x", "int", 8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown field kind"):
            Field("x", "decimal")

    @pytest.mark.parametrize(
        "kind, expected",
        [
            ("int", np.int64),
            ("int32", np.int32),
            ("float", np.float64),
            ("bool", np.bool_),
            ("date", np.int32),
        ],
    )
    def test_dtypes(self, kind, expected):
        assert Field("x", kind).dtype == np.dtype(expected)

    def test_str_dtype_width(self):
        assert Field("x", "str", 10).dtype == np.dtype("S10")


class TestSchema:
    def test_rejects_empty(self):
        with pytest.raises(SchemaError, match="at least one field"):
            Schema([])

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Field("a", "int"), Field("a", "float")])

    def test_lookup_missing_field(self):
        with pytest.raises(SchemaError, match="no field"):
            CITY["elevation"]

    def test_numpy_dtype_layout(self):
        dt = CITY.numpy_dtype()
        assert dt.names == ("name", "population", "area")
        assert dt.itemsize == 16 + 8 + 8

    def test_token_captures_structure(self):
        other = Schema(
            [
                Field("name", "str", 16),
                Field("population", "int"),
                Field("area", "float"),
            ],
            name="City",
        )
        assert CITY.token == other.token
        renamed = Schema(
            [
                Field("name", "str", 8),
                Field("population", "int"),
                Field("area", "float"),
            ],
            name="City",
        )
        assert CITY.token != renamed.token

    def test_project_preserves_order(self):
        proj = CITY.project(["area", "name"])
        assert proj.field_names == ("area", "name")

    def test_record_type_round_trip(self):
        record = CITY.record_type()("London", 9_000_000, 1572.0)
        encoded = CITY.encode_row(record)
        decoded = CITY.decode_row(np.array([encoded], dtype=CITY.numpy_dtype())[0])
        assert decoded == record

    def test_encode_values_length_check(self):
        with pytest.raises(SchemaError, match="expected 3 values"):
            CITY.encode_values(("London", 1))

    def test_str_overflow_rejected(self):
        with pytest.raises(SchemaError, match="exceeds declared width"):
            CITY.encode_values(("a" * 17, 1, 1.0))

    def test_none_rejected(self):
        with pytest.raises(SchemaError, match="cannot be None"):
            CITY.encode_values((None, 1, 1.0))


class TestDates:
    def test_epoch(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_round_trip(self):
        d = datetime.date(1998, 12, 1)
        assert days_to_date(date_to_days(d)) == d

    def test_date_field_round_trip(self):
        schema = Schema([Field("shipped", "date")])
        arr = StructArray.from_rows(schema, [(datetime.date(1995, 3, 15),)])
        assert arr.row(0).shipped == datetime.date(1995, 3, 15)

    def test_dates_compare_as_ints_natively(self):
        schema = Schema([Field("d", "date")])
        arr = StructArray.from_rows(
            schema, [(datetime.date(1995, 1, 1),), (datetime.date(1999, 1, 1),)]
        )
        cutoff = date_to_days(datetime.date(1997, 1, 1))
        mask = arr.column("d") <= cutoff
        assert list(mask) == [True, False]


class TestStructArray:
    def _sample(self):
        return StructArray.from_rows(
            CITY,
            [
                ("London", 9_000_000, 1572.0),
                ("Paris", 2_100_000, 105.4),
                ("Rome", 2_800_000, 1285.0),
            ],
        )

    def test_from_rows_and_len(self):
        assert len(self._sample()) == 3

    def test_column_is_view(self):
        arr = self._sample()
        col = arr.column("population")
        col[0] = 1
        assert arr.row(0).population == 1

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self._sample().column("nope")

    def test_row_decoding_strips_padding(self):
        assert self._sample().row(1).name == "Paris"

    def test_iteration_matches_rows(self):
        arr = self._sample()
        assert [r.name for r in arr] == ["London", "Paris", "Rome"]

    def test_from_objects(self):
        objs = self._sample().to_objects()
        rebuilt = StructArray.from_objects(CITY, objs)
        assert rebuilt.to_objects() == objs

    def test_take_and_filter(self):
        arr = self._sample()
        assert [r.name for r in arr.take(np.array([2, 0]))] == ["Rome", "London"]
        mask = arr.column("population") > 2_500_000
        assert [r.name for r in arr.filter(mask)] == ["London", "Rome"]

    def test_empty_array(self):
        arr = StructArray.from_rows(CITY, [])
        assert len(arr) == 0
        assert arr.to_objects() == []

    def test_dtype_mismatch_rejected(self):
        data = np.zeros(2, dtype=[("x", "i8")])
        with pytest.raises(SchemaError, match="does not match"):
            StructArray(CITY, data)

    def test_from_columns(self):
        arr = StructArray.from_columns(
            CITY,
            {
                "name": np.array([b"A", b"B"], dtype="S16"),
                "population": np.array([1, 2], dtype=np.int64),
                "area": np.array([0.5, 1.5]),
            },
        )
        assert arr.row(1).name == "B"

    def test_from_columns_length_mismatch(self):
        with pytest.raises(SchemaError, match="length mismatch"):
            StructArray.from_columns(
                CITY,
                {
                    "name": np.array([b"A"], dtype="S16"),
                    "population": np.array([1, 2], dtype=np.int64),
                    "area": np.array([0.5, 1.5]),
                },
            )

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcdef", max_size=8),
                st.integers(0, 10**9),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, rows):
        arr = StructArray.from_rows(CITY, rows)
        decoded = [(r.name, r.population, r.area) for r in arr]
        assert [(n, p) for n, p, _ in decoded] == [(n, p) for n, p, _ in rows]
        for (_, _, a_out), (_, _, a_in) in zip(decoded, rows):
            assert a_out == pytest.approx(a_in, nan_ok=False)


class TestColumnSet:
    def test_round_trip_with_struct_array(self):
        arr = StructArray.from_rows(CITY, [("A", 1, 1.0), ("B", 2, 2.0)])
        cols = ColumnSet.from_struct_array(arr)
        assert len(cols) == 2
        back = cols.to_struct_array()
        assert back.to_objects() == arr.to_objects()

    def test_filter_and_take(self):
        cols = ColumnSet.from_rows(CITY, [("A", 1, 1.0), ("B", 2, 2.0), ("C", 3, 3.0)])
        filtered = cols.filter(cols.column("population") >= 2)
        assert len(filtered) == 2
        taken = cols.take(np.array([1, 0]))
        assert list(taken.column("population")) == [2, 1]

    def test_batches_cover_input(self):
        cols = ColumnSet.from_rows(CITY, [(f"c{i}", i, float(i)) for i in range(10)])
        batches = list(cols.batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert list(batches[-1].column("population")) == [8, 9]

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError, match="missing columns"):
            ColumnSet(CITY, {"name": np.array([b"A"], dtype="S16")})


class TestBufferPage:
    def test_overflow_guard(self):
        schema = Schema([Field("x", "int")])
        page = BufferPage(schema, capacity=1)
        page.append((1,))
        assert page.full
        with pytest.raises(ExecutionError, match="overflow"):
            page.append((2,))

    def test_rows_returns_filled_prefix(self):
        schema = Schema([Field("x", "int")])
        page = BufferPage(schema, capacity=4)
        page.append((7,))
        page.append((8,))
        assert list(page.rows()["x"]) == [7, 8]


class TestBufferList:
    def test_grows_pages_on_demand(self):
        schema = Schema([Field("x", "int")])
        buffers = BufferList(schema, page_bytes=32)  # 4 elements per page
        for i in range(10):
            buffers.append((i,))
        assert buffers.page_count == 3
        assert len(buffers) == 10
        assert list(buffers.materialize()["x"]) == list(range(10))

    def test_pages_stream_in_order(self):
        schema = Schema([Field("x", "int")])
        buffers = BufferList(schema, page_bytes=16)  # 2 per page
        for i in range(5):
            buffers.append((i,))
        pages = list(buffers.pages())
        assert [list(p["x"]) for p in pages] == [[0, 1], [2, 3], [4]]

    def test_empty_materialize(self):
        schema = Schema([Field("x", "int")])
        assert len(BufferList(schema).materialize()) == 0

    def test_staged_bytes_counts_allocation(self):
        schema = Schema([Field("x", "int")])
        buffers = BufferList(schema, page_bytes=32)
        for i in range(5):
            buffers.append((i,))
        assert buffers.staged_bytes() == buffers.page_count * 32


class TestStreamingBuffer:
    def test_flushes_on_fill_and_finish(self):
        schema = Schema([Field("x", "int")])
        seen = []
        stream = StreamingBuffer(
            schema,
            consumer=lambda rows: seen.append(list(rows["x"])),
            page_bytes=24,
        )
        for i in range(7):
            stream.append((i,))
        stream.finish()
        assert seen == [[0, 1, 2], [3, 4, 5], [6]]
        assert stream.staged_total == 7
        assert stream.flushes == 3

    def test_fixed_footprint(self):
        schema = Schema([Field("x", "int")])
        stream = StreamingBuffer(schema, consumer=lambda rows: None, page_bytes=64)
        for i in range(1000):
            stream.append((i,))
        assert stream.footprint_bytes() == 64

    def test_finish_idempotent_when_empty(self):
        schema = Schema([Field("x", "int")])
        calls = []
        stream = StreamingBuffer(schema, consumer=lambda rows: calls.append(1))
        stream.finish()
        stream.finish()
        assert calls == []


class TestVersionedStructArray:
    def _sample(self):
        return StructArray.from_rows(
            CITY,
            [
                ("London", 9_000_000, 1572.0),
                ("Paris", 2_100_000, 105.4),
                ("Rome", 2_800_000, 1285.0),
            ],
        )

    # -- append path / watermarks --------------------------------------------

    def test_append_rows_bumps_version_and_length(self):
        arr = self._sample()
        assert arr.watermark == (0, 3)
        v = arr.append_rows([("Berlin", 3_700_000, 891.8)])
        assert v == 1
        assert arr.watermark == (1, 4)
        assert arr.row(3).name == "Berlin"

    def test_append_objects(self):
        arr = self._sample()
        arr.append_objects(arr.to_objects()[:2])
        assert len(arr) == 5
        assert [r.name for r in arr][-2:] == ["London", "Paris"]

    def test_empty_append_is_noop(self):
        arr = self._sample()
        assert arr.append_rows([]) == 0
        assert arr.watermark == (0, 3)

    def test_append_grows_geometrically(self):
        arr = StructArray.from_rows(CITY, [])
        for i in range(100):
            arr.append_rows([(f"c{i}", i, float(i))])
        assert len(arr) == 100
        assert arr.version == 100
        assert [r.population for r in arr] == list(range(100))

    def test_data_is_published_prefix(self):
        arr = self._sample()
        arr.append_rows([("Oslo", 700_000, 454.0)])
        # the backing buffer over-allocates; data exposes only the prefix
        assert len(arr.data) == 4

    # -- snapshots -----------------------------------------------------------

    def test_snapshot_pins_watermark(self):
        arr = self._sample()
        snap = arr.snapshot()
        arr.append_rows([("Berlin", 3_700_000, 891.8)])
        assert len(snap) == 3
        assert snap.watermark == (0, 3)
        assert len(arr) == 4

    def test_snapshot_is_frozen(self):
        snap = self._sample().snapshot()
        assert snap.frozen
        with pytest.raises(ExecutionError, match="snapshot"):
            snap.append_rows([("X", 1, 1.0)])

    def test_snapshot_of_snapshot_is_itself(self):
        snap = self._sample().snapshot()
        assert snap.snapshot() is snap

    def test_snapshot_shares_buffer_zero_copy(self):
        arr = self._sample()
        snap = arr.snapshot()
        assert snap.data.base is arr.data.base or snap.data is arr.data

    def test_readers_see_consistent_prefix_under_appends(self):
        arr = self._sample()
        snap = arr.snapshot()
        names = [r.name for r in snap]
        arr.append_rows([(f"c{i}", i, float(i)) for i in range(500)])
        assert [r.name for r in snap] == names

    # -- derived arrays: fresh physical design (regression) --------------------

    def test_take_gives_fresh_version_and_empty_indexes(self):
        arr = self._sample()
        arr.append_rows([("Berlin", 3_700_000, 891.8)])
        arr.create_index("name")
        derived = arr.take(np.array([1, 0]))
        assert derived.version == 0
        assert derived._indexes == {}
        assert derived._indexes is not arr._indexes
        assert derived.index_fields() == ()

    def test_filter_gives_fresh_version_and_empty_indexes(self):
        arr = self._sample()
        arr.create_index("population")
        derived = arr.filter(arr.column("population") > 0)
        assert derived.version == 0
        assert derived._indexes == {}
        assert derived._indexes is not arr._indexes

    def test_cluster_by_gives_fresh_version_and_empty_indexes(self):
        arr = self._sample()
        arr.create_index("population")
        clustered = arr.cluster_by("population")
        assert clustered.version == 0
        assert clustered._indexes == {}
        assert clustered._indexes is not arr._indexes
        assert clustered.clustering == "population"

    # -- version-aware physical design -----------------------------------------

    def test_clustering_goes_stale_on_append(self):
        arr = self._sample().cluster_by("population")
        assert arr.clustering == "population"
        assert arr.clustered_by == "population"
        arr.append_rows([("Tiny", 1, 0.1)])  # out of sorted position
        assert arr.clustering is None
        assert arr.clustered_by is None

    def test_stale_index_is_rebuilt_on_get(self):
        arr = self._sample()
        first = arr.create_index("name")
        assert arr.get_index("name") is first  # fresh: same object
        arr.append_rows([("Berlin", 3_700_000, 891.8)])
        rebuilt = arr.get_index("name")
        assert rebuilt is not first
        assert list(rebuilt.lookup("Berlin")) == [3]

    def test_snapshot_reads_through_parent_indexes(self):
        arr = self._sample()
        arr.create_index("name")
        snap = arr.snapshot()
        assert snap.index_fields() == ("name",)
        arr.append_rows([("Berlin", 3_700_000, 891.8)])
        # the parent index is now past the snapshot's watermark: the
        # snapshot materializes a prefix-correct index of its own
        index = snap.get_index("name")
        assert index.lookup("Berlin").size == 0
        assert list(index.lookup("Rome")) == [2]
