"""Tests for the NumPy kernels used by generated native code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.vectorized import (
    distinct_indexes,
    factorize,
    group_aggregate,
    hash_join_indexes,
    semi_join_mask,
    sort_indexes,
    topn_indexes,
)


class TestFactorize:
    def test_codes_rank_in_sorted_order(self):
        codes, uniques = factorize(np.array([30, 10, 30, 20]))
        assert list(uniques) == [10, 20, 30]
        assert list(codes) == [2, 0, 2, 1]

    def test_bytes(self):
        codes, uniques = factorize(np.array([b"b", b"a", b"b"]))
        assert list(uniques) == [b"a", b"b"]
        assert list(codes) == [1, 0, 1]


class TestGroupAggregate:
    def test_single_key_sum_count(self):
        keys = np.array([2, 1, 2, 1, 2])
        vals = np.array([1.0, 10.0, 2.0, 20.0, 3.0])
        (gk,), (sums, counts) = group_aggregate(
            [keys], [("sum", vals), ("count", None)]
        )
        # first-seen order: group 2 first, then group 1
        assert list(gk) == [2, 1]
        assert list(sums) == [6.0, 30.0]
        assert list(counts) == [3, 2]

    def test_avg_min_max(self):
        keys = np.array([1, 1, 2])
        vals = np.array([4.0, 8.0, 5.0])
        _, (avgs, lows, highs) = group_aggregate(
            [keys], [("avg", vals), ("min", vals), ("max", vals)]
        )
        assert list(avgs) == [6.0, 5.0]
        assert list(lows) == [4.0, 5.0]
        assert list(highs) == [8.0, 5.0]

    def test_int_min_max(self):
        keys = np.array([1, 1, 2])
        vals = np.array([4, 8, 5], dtype=np.int64)
        _, (lows, highs) = group_aggregate([keys], [("min", vals), ("max", vals)])
        assert list(lows) == [4, 5]
        assert list(highs) == [8, 5]

    def test_bytes_min_max(self):
        keys = np.array([1, 1, 2])
        vals = np.array([b"x", b"a", b"m"])
        _, (lows, highs) = group_aggregate([keys], [("min", vals), ("max", vals)])
        assert list(lows) == [b"a", b"m"]
        assert list(highs) == [b"x", b"m"]

    def test_composite_key(self):
        k1 = np.array([1, 1, 2, 1])
        k2 = np.array([b"a", b"b", b"a", b"a"])
        (g1, g2), (counts,) = group_aggregate([k1, k2], [("count", None)])
        groups = list(zip(g1.tolist(), g2.tolist()))
        assert groups == [(1, b"a"), (1, b"b"), (2, b"a")]
        assert list(counts) == [2, 1, 1]

    def test_requires_key(self):
        with pytest.raises(ValueError):
            group_aggregate([], [("count", None)])

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_python_grouping(self, pairs):
        keys = np.array([k for k, _ in pairs])
        vals = np.array([v for _, v in pairs], dtype=np.float64)
        (gk,), (sums,) = group_aggregate([keys], [("sum", vals)])
        expected = {}
        order = []
        for k, v in pairs:
            if k not in expected:
                order.append(k)
                expected[k] = 0.0
            expected[k] += v
        assert list(gk) == order
        assert [round(s, 6) for s in sums] == [round(expected[k], 6) for k in order]


class TestHashJoin:
    def test_basic_match(self):
        li, ri = hash_join_indexes(np.array([1, 2, 3]), np.array([2, 3, 3]))
        pairs = list(zip(li.tolist(), ri.tolist()))
        assert pairs == [(1, 0), (2, 1), (2, 2)]

    def test_preserves_probe_order_and_build_order(self):
        left = np.array([5, 1, 5])
        right = np.array([5, 9, 5])
        li, ri = hash_join_indexes(left, right)
        assert li.tolist() == [0, 0, 2, 2]
        assert ri.tolist() == [0, 2, 0, 2]

    def test_empty_inputs(self):
        li, ri = hash_join_indexes(np.array([], dtype=np.int64), np.array([1]))
        assert len(li) == 0 and len(ri) == 0
        li, ri = hash_join_indexes(np.array([1]), np.array([], dtype=np.int64))
        assert len(li) == 0 and len(ri) == 0

    def test_bytes_keys(self):
        li, ri = hash_join_indexes(np.array([b"a", b"b"]), np.array([b"b"]))
        assert li.tolist() == [1] and ri.tolist() == [0]

    @given(
        st.lists(st.integers(0, 8), max_size=40),
        st.lists(st.integers(0, 8), max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_nested_loop(self, left, right):
        la, ra = np.array(left, dtype=np.int64), np.array(right, dtype=np.int64)
        li, ri = hash_join_indexes(la, ra)
        got = list(zip(li.tolist(), ri.tolist()))
        expected = [
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv
        ]
        assert got == expected


class TestSemiJoin:
    def test_mask(self):
        mask = semi_join_mask(np.array([1, 2, 3]), np.array([2, 9]))
        assert mask.tolist() == [False, True, False]

    def test_empty_right(self):
        mask = semi_join_mask(np.array([1, 2]), np.array([], dtype=np.int64))
        assert mask.tolist() == [False, False]


class TestSortIndexes:
    def test_single_ascending(self):
        order = sort_indexes([np.array([3, 1, 2])], [False])
        assert order.tolist() == [1, 2, 0]

    def test_single_descending(self):
        order = sort_indexes([np.array([3, 1, 2])], [True])
        assert order.tolist() == [0, 2, 1]

    def test_descending_bytes(self):
        order = sort_indexes([np.array([b"a", b"c", b"b"])], [True])
        assert order.tolist() == [1, 2, 0]

    def test_multi_key_mixed_directions(self):
        k1 = np.array([1, 0, 1, 0])
        k2 = np.array([10.0, 20.0, 30.0, 40.0])
        order = sort_indexes([k1, k2], [False, True])
        assert order.tolist() == [3, 1, 2, 0]

    def test_stability(self):
        k = np.array([1, 1, 0])
        order = sort_indexes([k], [False])
        assert order.tolist() == [2, 0, 1]


class TestTopN:
    def test_numeric_fast_path(self):
        keys = np.array([5.0, 1.0, 4.0, 2.0, 3.0])
        idx = topn_indexes([keys], [False], 2)
        assert idx.tolist() == [1, 3]

    def test_descending(self):
        keys = np.array([5.0, 1.0, 4.0])
        idx = topn_indexes([keys], [True], 2)
        assert idx.tolist() == [0, 2]

    def test_n_larger_than_input(self):
        keys = np.array([2, 1])
        assert topn_indexes([keys], [False], 10).tolist() == [1, 0]

    def test_zero(self):
        assert len(topn_indexes([np.array([1, 2])], [False], 0)) == 0

    def test_ties_stable(self):
        keys = np.array([1.0, 1.0, 1.0, 0.0])
        idx = topn_indexes([keys], [False], 3)
        assert idx.tolist() == [3, 0, 1]

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_sorted_prefix(self, values, n):
        keys = np.array(values, dtype=np.int64)
        idx = topn_indexes([keys], [False], n)
        expected = sorted(range(len(values)), key=lambda i: (values[i], i))[:n]
        assert idx.tolist() == expected


class TestDistinct:
    def test_first_occurrences(self):
        cols = [np.array([1, 2, 1, 3, 2])]
        assert distinct_indexes(cols).tolist() == [0, 1, 3]

    def test_composite(self):
        c1 = np.array([1, 1, 1])
        c2 = np.array([b"a", b"b", b"a"])
        assert distinct_indexes([c1, c2]).tolist() == [0, 1]

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            distinct_indexes([])
