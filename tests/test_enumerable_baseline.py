"""Behavioral tests for the LINQ-to-objects baseline engine.

These verify the engine preserves the §2.3 *inefficiencies* (that is its
job — the benchmarks measure them) as well as LINQ's documented semantics
(deferred execution, streaming, group ordering).
"""

from types import SimpleNamespace

import pytest

from repro import new
from repro.errors import ExecutionError, UnsupportedQueryError
from repro.expressions import expression_to_text
from repro.expressions.nodes import QueryOp, SourceExpr
from repro.query import from_iterable
from repro.query.enumerable import enumerate_query, scalar_query


def item(**kw):
    return SimpleNamespace(**kw)


class CountingList(list):
    """A source that counts how many times it was iterated."""

    def __init__(self, items):
        super().__init__(items)
        self.iterations = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


class AccessCounter:
    """An element that counts attribute reads."""

    def __init__(self, **values):
        object.__setattr__(self, "_values", values)
        object.__setattr__(self, "reads", 0)

    def __getattr__(self, name):
        values = object.__getattribute__(self, "_values")
        if name in values:
            object.__setattr__(
                self, "reads", object.__getattribute__(self, "reads") + 1
            )
            return values[name]
        raise AttributeError(name)


class TestDeferredExecution:
    def test_nothing_runs_at_definition(self):
        source = CountingList([item(x=1)])
        query = from_iterable(source, token="t:defer").using("linq").where(
            lambda s: s.x > 0
        )
        # from_iterable's re-iterability check touches the source once;
        # defining operators afterwards must not
        baseline = source.iterations
        query.where(lambda s: s.x > 1).select(lambda s: s.x)
        assert source.iterations == baseline
        query.to_list()
        assert source.iterations == baseline + 1

    def test_each_consumption_reexecutes(self):
        source = CountingList([item(x=1)])
        query = from_iterable(source, token="t:re").using("linq").select(lambda s: s.x)
        baseline = source.iterations
        query.to_list()
        query.to_list()
        assert source.iterations == baseline + 2

    def test_streaming_operators_pull_lazily(self):
        pulled = []

        class Spy:
            def __iter__(self):
                for i in range(1000):
                    pulled.append(i)
                    yield item(x=i)

        query = from_iterable(Spy(), token="t:lazy").using("linq").where(
            lambda s: s.x >= 3
        )
        iterator = iter(query)
        next(iterator)
        assert len(pulled) == 4  # stopped at the first qualifying element


class TestPreservedInefficiencies:
    def test_each_aggregate_rescans_the_group(self):
        """§2.3: 'each aggregation iterates over all elements in the group'."""
        elements = [AccessCounter(g=1, v=10) for _ in range(5)]
        query = (
            from_iterable(elements, token="t:agg")
            .using("linq")
            .group_by(
                lambda s: s.g,
                lambda g: new(
                    a=g.sum(lambda s: s.v),
                    b=g.sum(lambda s: s.v),
                    c=g.sum(lambda s: s.v),
                ),
            )
        )
        query.to_list()
        # per element: 1 key read + 3 independent aggregate passes
        assert elements[0].reads == 4

    def test_no_predicate_reordering(self):
        """The baseline runs predicates exactly as written."""
        order = []

        class Probe:
            def __init__(self, tag, value):
                self._tag = tag
                self._value = value

            @property
            def cheap(self):
                order.append("cheap")
                return self._value

            @property
            def costly(self):
                order.append("costly")
                return self._value

        source = [Probe("a", 1)]
        query = (
            from_iterable(source, token="t:order")
            .using("linq")
            .where(lambda s: (s.costly > 0) & (s.cheap > 0))
        )
        query.to_list()
        assert order == ["costly", "cheap"]  # written order preserved


class TestLinqSemantics:
    def test_group_by_first_seen_order(self):
        rows = [item(g="z"), item(g="a"), item(g="z")]
        groups = (
            from_iterable(rows, token="t:grp").using("linq").group_by(lambda s: s.g)
        ).to_list()
        assert [g.key for g in groups] == ["z", "a"]

    def test_then_by_chain(self):
        rows = [item(a=1, b=2), item(a=1, b=1), item(a=0, b=9)]
        result = (
            from_iterable(rows, token="t:tb")
            .using("linq")
            .order_by(lambda s: s.a)
            .then_by(lambda s: s.b)
        ).to_list()
        assert [(r.a, r.b) for r in result] == [(0, 9), (1, 1), (1, 2)]

    def test_mixed_direction_chain(self):
        rows = [item(a=0, b=1), item(a=0, b=2), item(a=1, b=3)]
        result = (
            from_iterable(rows, token="t:mix")
            .using("linq")
            .order_by_desc(lambda s: s.a)
            .then_by_desc(lambda s: s.b)
        ).to_list()
        assert [(r.a, r.b) for r in result] == [(1, 3), (0, 2), (0, 1)]

    def test_take_zero(self):
        assert from_iterable([1, 2], token="t:t0").using("linq").take(0).to_list() == []

    def test_skip_beyond_end(self):
        assert from_iterable([1, 2], token="t:sb").using("linq").skip(9).to_list() == []


class TestErrorPaths:
    def test_missing_source(self):
        with pytest.raises(ExecutionError, match="source_1"):
            list(enumerate_query(SourceExpr(1, "T"), [[1]], {}))

    def test_unknown_operator(self):
        expr = QueryOp("group_join", SourceExpr(0, "T"), ())
        with pytest.raises(UnsupportedQueryError, match="group_join"):
            list(enumerate_query(expr, [[1]], {}))

    def test_scalar_requires_terminal_op(self):
        with pytest.raises(ExecutionError, match="terminal"):
            scalar_query(SourceExpr(0, "T"), [[1]], {})

    def test_scalar_rejects_non_scalar_op(self):
        expr = QueryOp("where", SourceExpr(0, "T"), ())
        with pytest.raises(UnsupportedQueryError, match="not a scalar"):
            scalar_query(expr, [[1]], {})


class TestExpressionTreeRendering:
    def test_figure1_shape(self):
        query = (
            from_iterable([item(name="London", population=1)], token="t:fig1")
            .where(lambda s: s.name == "London")
            .select(lambda s: s.population)
        )
        text = expression_to_text(query.expr)
        # the Figure-1 spine: select → where → source, with the lambdas
        assert text.index("'select'") < text.index("'where'")
        assert "SourceExpr" in text
        assert "Binary 'eq'" in text
        assert "Member .population" in text
