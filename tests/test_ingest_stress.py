"""Ingest stress: concurrent writers vs readers over versioned storage.

Runs in CI's ingest-stress leg.  Writers push whole batches through
``session.ingest`` (the admission-controlled write path) while readers
hammer prepared statements on the same table.  The invariants:

* **no torn lengths** — every observed prefix is a whole number of
  batches: appends publish buffer-then-watermark atomically, so a reader
  either sees all of a batch or none of it;
* **monotonic watermarks** — each reader's successive executions observe
  non-decreasing row counts (sources only grow);
* **snapshot isolation** — a snapshot taken before the writers start
  returns byte-identical results on every re-execution, no matter how
  much the live array grows;
* **pool hygiene** — ingest uses its *own* slot pool: write bursts never
  occupy query slots (and vice versa), cancellation and timeouts leave
  the table untouched, and both pools drain to zero.
"""

import threading

from repro import new
from repro.errors import QueryCancelled, QueryTimeoutError
from repro.observability.metrics import METRICS
from repro.query import from_iterable
from repro.service import AdmissionController, QueryService
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema(
    [Field("batch", "int"), Field("x", "int"), Field("y", "float")],
    name="Ingest",
)

BATCH = 50  # rows per ingest call; atomicity is asserted at this grain
WRITERS = 4
BATCHES_PER_WRITER = 8


def _batch_rows(batch_id):
    # y is a multiple of 0.25 so partial sums are exact in binary floats
    return [(batch_id, i, 0.25 * (batch_id + i)) for i in range(BATCH)]


def _fresh_table():
    # batch 0 is the pre-ingest base the readers can always see
    return StructArray.from_rows(SCHEMA, _batch_rows(0))


def _group_query(arr, service, workers=None):
    q = (
        from_iterable(arr)
        .using("compiled", service.provider)
        .group_by(lambda r: r.batch, lambda g: new(b=g.key, n=g.count()))
    )
    return q.in_parallel(workers, 64) if workers else q


class TestWritersVersusReaders:
    def test_no_torn_lengths_and_monotonic_watermarks(self):
        arr = _fresh_table()
        service = QueryService()
        session = service.session(engine="compiled", timeout=60.0)
        requests_before = METRICS.counter("ingest.requests").value
        rows_before = METRICS.counter("ingest.rows").value

        # a snapshot pinned before any writer starts: its results must
        # never move, however much the live array grows underneath
        snap = arr.snapshot()
        snap_stmt = session.prepare(_group_query(snap, service))
        snap_expected = snap_stmt.execute()

        # prepared readers on the live table: sequential and morsel-parallel
        statements = [
            session.prepare(_group_query(arr, service)),
            session.prepare(_group_query(arr, service, workers=2)),
        ]

        done = threading.Event()
        errors = []

        def write(writer):
            try:
                for k in range(BATCHES_PER_WRITER):
                    batch_id = 1 + writer * BATCHES_PER_WRITER + k
                    session.ingest(arr, _batch_rows(batch_id))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def read(stmt):
            try:
                last_total = 0
                for _ in range(500):
                    groups = stmt.execute()
                    total = 0
                    for row in groups:
                        # a partially visible batch is a torn write
                        assert row.n == BATCH, (
                            f"batch {row.b} observed with {row.n} rows"
                        )
                        total += row.n
                    # each execution pins a fresh snapshot; growth only
                    assert total >= last_total
                    last_total = total
                    if done.is_set():
                        break
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def read_snapshot():
            try:
                for _ in range(500):
                    assert snap_stmt.execute() == snap_expected
                    if done.is_set():
                        break
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(WRITERS)
        ]
        threads += [threading.Thread(target=read, args=(s,)) for s in statements]
        threads.append(threading.Thread(target=read_snapshot))
        for t in threads:
            t.start()
        for t in threads[:WRITERS]:
            t.join(timeout=120.0)
        done.set()
        for t in threads[WRITERS:]:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "stress thread hung"
        assert not errors, errors

        # every batch landed exactly once, completely
        total_batches = 1 + WRITERS * BATCHES_PER_WRITER
        assert len(arr) == BATCH * total_batches
        final = session.prepare(_group_query(arr, service)).execute()
        assert sorted(row.b for row in final) == list(range(total_batches))
        assert all(row.n == BATCH for row in final)
        # the snapshot still answers from its pinned prefix
        assert len(snap) == BATCH
        assert snap_stmt.execute() == snap_expected

        # accounting: every ingest call and row is on the meters
        written = WRITERS * BATCHES_PER_WRITER
        assert (
            METRICS.counter("ingest.requests").value - requests_before == written
        )
        assert (
            METRICS.counter("ingest.rows").value - rows_before
            == written * BATCH
        )
        # both pools drained
        assert service.ingest_admission.running == 0
        assert service.ingest_admission.queue_depth == 0
        assert service.admission.running == 0
        session.close()


class TestPoolSeparation:
    def test_ingest_never_occupies_query_slots(self):
        # a service whose single query slot is held: ingest still lands,
        # because writes pass through their own pool
        service = QueryService(admission=AdmissionController(slots=1))
        session = service.session(timeout=10.0)
        arr = _fresh_table()
        ticket = service.admission.acquire()
        try:
            version = session.ingest(arr, _batch_rows(1))
        finally:
            ticket.release()
        assert version == 1
        assert len(arr) == 2 * BATCH
        session.close()

    def test_queries_never_occupy_ingest_slots(self):
        # both write slots held: queries keep flowing through admission
        service = QueryService(
            ingest_admission=AdmissionController(slots=2)
        )
        session = service.session(engine="compiled", timeout=10.0)
        arr = _fresh_table()
        held = [service.ingest_admission.acquire() for _ in range(2)]
        try:
            rows = session.execute(_group_query(arr, service))
            assert [row.n for row in rows] == [BATCH]
        finally:
            for t in held:
                t.release()
        session.close()


class TestIngestCancellation:
    def test_timeout_in_write_queue_leaves_table_untouched(self):
        service = QueryService(
            ingest_admission=AdmissionController(slots=1)
        )
        session = service.session(timeout=10.0)
        arr = _fresh_table()
        version_before = arr.version
        ticket = service.ingest_admission.acquire()
        try:
            outcome = []

            def blocked():
                try:
                    session.ingest(arr, _batch_rows(1), timeout=0.05)
                except QueryTimeoutError:
                    outcome.append("timeout")

            t = threading.Thread(target=blocked)
            t.start()
            t.join(timeout=30.0)
            assert not t.is_alive()
            assert outcome == ["timeout"]
        finally:
            ticket.release()
        # the deadline expired in the queue: nothing was appended
        assert arr.version == version_before
        assert len(arr) == BATCH
        assert service.ingest_admission.running == 0
        assert service.ingest_admission.queue_depth == 0
        session.close()

    def test_session_close_cancels_admitted_ingest(self):
        # the token is cancelled while the writer holds a granted slot
        # but before the append runs: token.check() is the last
        # cancellation point, so the table must be untouched
        service = QueryService(
            ingest_admission=AdmissionController(slots=1)
        )
        session = service.session(timeout=10.0)
        arr = _fresh_table()
        version_before = arr.version
        ticket = service.ingest_admission.acquire()
        outcome = []
        started = threading.Event()

        def blocked():
            started.set()
            try:
                session.ingest(arr, _batch_rows(1), timeout=10.0)
            except QueryCancelled:
                outcome.append("cancelled")
            except QueryTimeoutError:  # pragma: no cover - defensive
                outcome.append("timeout")

        t = threading.Thread(target=blocked)
        t.start()
        started.wait(timeout=10.0)
        # close while the write waits for the held slot; the waiter only
        # notices the cancel once admitted, at the pre-append checkpoint
        session.close()
        ticket.release()
        t.join(timeout=30.0)
        assert not t.is_alive()
        assert outcome == ["cancelled"]
        assert arr.version == version_before
        assert len(arr) == BATCH
        assert service.ingest_admission.running == 0
        assert service.ingest_admission.queue_depth == 0
