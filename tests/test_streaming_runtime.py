"""Tests for the buffered-materialization merge structures (§6.1.2)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime.streaming import StreamingGroupAggregator, StreamingJoinProbe
from repro.runtime.vectorized import hash_join_indexes


class TestStreamingGroupAggregator:
    def test_single_page_matches_kernel(self):
        keys = np.array([1, 2, 1, 2, 1])
        values = np.array([1.0, 10.0, 2.0, 20.0, 3.0])
        merger = StreamingGroupAggregator(1, ["sum", "count"])
        merger.consume_page((keys,), [values, None])
        (gk,), (sums, counts) = merger.finalize()
        assert list(gk) == [1, 2]
        assert list(sums) == [6.0, 30.0]
        assert list(counts) == [3, 2]

    def test_multi_page_merge_equals_single_pass(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 10, 1000)
        values = rng.random(1000)
        merger = StreamingGroupAggregator(1, ["sum", "min", "max", "count"])
        for start in range(0, 1000, 128):
            page_keys = keys[start : start + 128]
            page_values = values[start : start + 128]
            merger.consume_page(
                (page_keys,), [page_values, page_values, page_values, None]
            )
        (gk,), (sums, lows, highs, counts) = merger.finalize()
        for i, key in enumerate(gk):
            mask = keys == key
            assert sums[i] == pytest.approx(values[mask].sum())
            assert lows[i] == pytest.approx(values[mask].min())
            assert highs[i] == pytest.approx(values[mask].max())
            assert counts[i] == mask.sum()

    def test_first_seen_order_across_pages(self):
        merger = StreamingGroupAggregator(1, ["count"])
        merger.consume_page((np.array([5, 3]),), [None])
        merger.consume_page((np.array([9, 3]),), [None])
        (gk,), _ = merger.finalize()
        assert list(gk) == [5, 3, 9]

    def test_composite_keys(self):
        merger = StreamingGroupAggregator(2, ["count"])
        merger.consume_page(
            (np.array([1, 1, 2]), np.array([b"a", b"b", b"a"])), [None]
        )
        (k1, k2), (counts,) = merger.finalize()
        assert list(zip(k1.tolist(), k2.tolist(), counts.tolist())) == [
            (1, b"a", 1), (1, b"b", 1), (2, b"a", 1),
        ]

    def test_empty_page_ignored(self):
        merger = StreamingGroupAggregator(1, ["sum"])
        merger.consume_page((np.zeros(0, dtype=np.int64),), [np.zeros(0)])
        (gk,), (sums,) = merger.finalize()
        assert len(gk) == 0 and len(sums) == 0

    def test_no_pages_finalizes_empty(self):
        merger = StreamingGroupAggregator(2, ["sum", "count"])
        keys, aggs = merger.finalize()
        assert len(keys) == 2 and all(len(k) == 0 for k in keys)
        assert all(len(a) == 0 for a in aggs)

    def test_group_split_across_page_boundary(self):
        # one logical group whose rows land in different pages must merge
        # to a single output group, even at page size 1
        keys = np.array([4, 4, 4, 9])
        values = np.array([1.0, 2.0, 3.0, 10.0])
        merger = StreamingGroupAggregator(1, ["sum", "count"])
        for i in range(len(keys)):
            merger.consume_page((keys[i : i + 1],), [values[i : i + 1], None])
        (gk,), (sums, counts) = merger.finalize()
        assert list(gk) == [4, 9]
        assert list(sums) == [6.0, 10.0]
        assert list(counts) == [3, 1]

    def test_empty_first_page_defers_dtype_capture(self):
        # dtypes come from the first *non-empty* page; a leading empty
        # page (e.g. a filter that kills the first morsel) must not pin
        # the float64 placeholders
        merger = StreamingGroupAggregator(1, ["sum"])
        merger.consume_page((np.zeros(0, dtype=np.int64),), [np.zeros(0)])
        merger.consume_page(
            (np.array([2, 2], dtype=np.int32),),
            [np.array([5, 7], dtype=np.int64)],
        )
        (gk,), (sums,) = merger.finalize()
        assert gk.dtype == np.int32
        assert sums.dtype == np.int64
        assert list(gk) == [2] and list(sums) == [12]

    def test_empty_pages_interleaved_with_data(self):
        merger = StreamingGroupAggregator(1, ["min", "max"])
        empty = (np.zeros(0, dtype=np.int64),)
        merger.consume_page(empty, [np.zeros(0), np.zeros(0)])
        merger.consume_page(
            (np.array([1]),), [np.array([5.0]), np.array([5.0])]
        )
        merger.consume_page(empty, [np.zeros(0), np.zeros(0)])
        merger.consume_page(
            (np.array([1]),), [np.array([2.0]), np.array([9.0])]
        )
        (gk,), (lows, highs) = merger.finalize()
        assert list(gk) == [1]
        assert lows[0] == 2.0 and highs[0] == 9.0

    def test_only_empty_pages_finalizes_empty(self):
        merger = StreamingGroupAggregator(2, ["sum", "count"])
        merger.consume_page(
            (np.zeros(0, dtype=np.int64), np.zeros(0, dtype="S2")),
            [np.zeros(0), None],
        )
        keys, aggs = merger.finalize()
        assert len(keys) == 2 and all(len(k) == 0 for k in keys)
        assert all(len(a) == 0 for a in aggs)

    def test_later_page_introduces_new_extreme(self):
        # min/max merge must take later pages' extremes, not first-seen
        merger = StreamingGroupAggregator(1, ["min", "max"])
        merger.consume_page(
            (np.array([1, 1]),),
            [np.array([5.0, 4.0]), np.array([5.0, 4.0])],
        )
        merger.consume_page(
            (np.array([1]),), [np.array([-1.0]), np.array([-1.0])]
        )
        merger.consume_page(
            (np.array([1]),), [np.array([99.0]), np.array([99.0])]
        )
        (_,), (lows, highs) = merger.finalize()
        assert lows[0] == -1.0 and highs[0] == 99.0

    def test_avg_rejected(self):
        with pytest.raises(ExecutionError, match="cannot merge across pages"):
            StreamingGroupAggregator(1, ["avg"])

    def test_bytes_min_max_merge(self):
        merger = StreamingGroupAggregator(1, ["min", "max"])
        merger.consume_page(
            (np.array([1, 1]),), [np.array([b"m", b"m"]), np.array([b"m", b"m"])]
        )
        merger.consume_page(
            (np.array([1]),), [np.array([b"a"]), np.array([b"a"])]
        )
        (gk,), (lows, highs) = merger.finalize()
        assert lows[0] == b"a" and highs[0] == b"m"


class TestStreamingJoinProbe:
    def test_page_probes_match_one_shot_join(self):
        rng = np.random.default_rng(11)
        build = rng.integers(0, 30, 200)
        probe_keys = rng.integers(0, 30, 500)
        one_li, one_ri = hash_join_indexes(probe_keys, build)
        expected = set(zip(one_li.tolist(), one_ri.tolist()))

        probe = StreamingJoinProbe(build)
        got = set()
        for start in range(0, 500, 64):
            page = probe_keys[start : start + 64]
            li, ri = probe.probe(page)
            got.update(zip((li + start).tolist(), ri.tolist()))
        assert got == expected

    def test_empty_build(self):
        probe = StreamingJoinProbe(np.zeros(0, dtype=np.int64))
        li, ri = probe.probe(np.array([1, 2]))
        assert len(li) == 0 and len(ri) == 0

    def test_empty_page(self):
        probe = StreamingJoinProbe(np.array([1, 2]))
        li, ri = probe.probe(np.zeros(0, dtype=np.int64))
        assert len(li) == 0 and len(ri) == 0

    def test_duplicate_build_keys_expand(self):
        probe = StreamingJoinProbe(np.array([7, 7, 7]))
        li, ri = probe.probe(np.array([7]))
        assert list(li) == [0, 0, 0]
        assert sorted(ri.tolist()) == [0, 1, 2]
