"""Service-layer stress: many threads against a small slot pool.

Runs in CI's service-stress leg.  The scenarios inject slow queries
(slowness comes from data volume — predicates are traced once, so a
sleeping lambda cannot slow a query down) and assert the *counts* of
each outcome class: completed, timed out, cancelled, rejected.  After
every scenario the pool must be fully drained — no leaked slots, no
stuck waiters, no held compile locks.
"""

import threading
import time

import numpy as np

from repro import from_struct_array
from repro.errors import (
    AdmissionRejected,
    QueryCancelled,
    QueryTimeoutError,
)
from repro.observability.metrics import METRICS
from repro.query import QueryProvider
from repro.service import AdmissionController, QueryService
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Stress")


def _array(n, seed=0):
    data = np.zeros(n, dtype=SCHEMA.numpy_dtype())
    rng = np.random.default_rng(seed)
    data["x"] = rng.integers(0, n, n)
    data["y"] = rng.random(n)
    return StructArray(SCHEMA, data)


FAST_ROWS = _array(200)
SLOW_ROWS = _array(100_000)  # ~0.5s on the row-at-a-time compiled engine


def _fast_query(provider):
    return (
        from_struct_array(FAST_ROWS)
        .using("compiled", provider)
        .where(lambda r: r.x % 3 == 1)
        .select(lambda r: r.y)
    )


def _slow_query(provider):
    return (
        from_struct_array(SLOW_ROWS)
        .using("compiled", provider)
        .where(lambda r: r.x % 7 > 2)
        .select(lambda r: r.y)
    )


def _service(slots, max_queue=None):
    return QueryService(
        provider=QueryProvider(),
        admission=AdmissionController(slots=slots, max_queue=max_queue),
    )


def _run_all(threads):
    for t in threads:
        t.start()
    _join_all(threads)


def _join_all(threads):
    for t in threads:
        t.join(timeout=120.0)
    assert not any(t.is_alive() for t in threads), "stress thread hung"


def _drained(service):
    # timed-out workers release their slots at the next checkpoint,
    # which may trail the caller's QueryTimeoutError — poll briefly
    for _ in range(600):
        if (
            service.admission.running == 0
            and service.admission.queue_depth == 0
            and not service.provider._key_locks
        ):
            break
        time.sleep(0.05)
    assert service.admission.running == 0
    assert service.admission.queue_depth == 0
    assert service.provider._key_locks == {}


class Outcomes:
    """Thread-safe outcome tally for one scenario."""

    def __init__(self):
        self._lock = threading.Lock()
        self.completed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.rejected = 0
        self.errors = []

    def record(self, fn):
        try:
            fn()
        except QueryTimeoutError:
            kind = "timeouts"
        except QueryCancelled:
            kind = "cancelled"
        except AdmissionRejected:
            kind = "rejected"
        except Exception as exc:  # pragma: no cover - surfaced in asserts
            with self._lock:
                self.errors.append(exc)
            return
        else:
            kind = "completed"
        with self._lock:
            setattr(self, kind, getattr(self, kind) + 1)

    @property
    def total(self):
        return self.completed + self.timeouts + self.cancelled + self.rejected


def _hold_slot_until(controller, depth_reached, then_release_after=0.0):
    """Acquire the only slot; release once *depth_reached* waiters queue."""
    ticket = controller.acquire()

    def watch():
        for _ in range(2000):
            if controller.queue_depth >= depth_reached:
                break
            time.sleep(0.005)
        if then_release_after:
            time.sleep(then_release_after)
        ticket.release()

    thread = threading.Thread(target=watch)
    thread.start()
    return thread


class TestBackpressure:
    def test_exact_rejection_count_when_queue_full(self):
        # one slot held, queue of 2: six arrivals → 2 wait (and complete
        # once the slot frees), 4 fast-fail with AdmissionRejected
        service = _service(slots=1, max_queue=2)
        rejected_before = METRICS.counter("service.rejected").value
        # hold the only slot with an explicit ticket: releasing on
        # depth-reached would race the overflow arrivals below (a seated
        # waiter could dequeue first, freeing a queue seat)
        ticket = service.admission.acquire()
        outcomes = Outcomes()

        # fill the two queue seats first, deterministically
        seated = []
        for _ in range(2):
            t = threading.Thread(
                target=outcomes.record,
                args=(
                    lambda: _service_execute(service, _fast_query, timeout=30.0),
                ),
            )
            t.start()
            seated.append(t)
        for _ in range(2000):
            if service.admission.queue_depth == 2:
                break
            time.sleep(0.005)
        assert service.admission.queue_depth == 2

        # every further arrival must bounce immediately
        overflow = [
            threading.Thread(
                target=outcomes.record,
                args=(
                    lambda: _service_execute(service, _fast_query, timeout=30.0),
                ),
            )
            for _ in range(4)
        ]
        _run_all(overflow)
        assert outcomes.rejected == 4

        ticket.release()
        _join_all(seated)
        assert outcomes.completed == 2
        assert outcomes.total == 6
        assert not outcomes.errors
        assert (
            METRICS.counter("service.rejected").value - rejected_before == 4
        )
        _drained(service)


class TestQueueTimeouts:
    def test_waiters_expire_in_queue(self):
        # the slot is held longer than every waiter's deadline: all three
        # time out *in the queue*, never execute, and leave it clean
        service = _service(slots=1)
        holder = _hold_slot_until(
            service.admission, depth_reached=3, then_release_after=0.5
        )
        outcomes = Outcomes()
        waiters = [
            threading.Thread(
                target=outcomes.record,
                args=(
                    lambda: _service_execute(service, _fast_query, timeout=0.1),
                ),
            )
            for _ in range(3)
        ]
        _run_all(waiters)
        holder.join(timeout=30.0)
        assert outcomes.timeouts == 3
        assert outcomes.total == 3
        assert not outcomes.errors
        # after release the pool serves again
        assert len(_service_execute(service, _fast_query, timeout=30.0)) > 0
        _drained(service)


class TestSessionCloseCancels:
    def test_close_cancels_queued_work(self):
        service = _service(slots=1)
        session = service.session()
        holder = _hold_slot_until(
            service.admission, depth_reached=2, then_release_after=0.2
        )
        outcomes = Outcomes()

        def queued_run():
            q = _fast_query(service.provider)
            outcomes.record(lambda: session.execute(q, timeout=30.0))

        runners = [threading.Thread(target=queued_run) for _ in range(2)]
        for t in runners:
            t.start()
        for _ in range(2000):
            if service.admission.queue_depth == 2:
                break
            time.sleep(0.005)
        session.close()
        # close() cancels the *tokens*; waiters notice when granted (the
        # drain checkpoint) or at the queue-wait deadline — either way
        # they must resolve as cancellations, not completions
        _join_all(runners)
        holder.join(timeout=30.0)
        assert outcomes.cancelled + outcomes.completed == 2
        assert not outcomes.errors
        _drained(service)


class TestMixedStress:
    def test_mixed_workload_accounts_every_request(self):
        # 16 threads over 2 slots and a queue of 3: doomed slow queries
        # (tight deadline), healthy fast ones (generous deadline), and
        # raw backpressure — every request resolves into exactly one
        # outcome class and the pool drains
        service = _service(slots=2, max_queue=3)
        executions_before = METRICS.counter("service.executions").value
        outcomes = Outcomes()

        def doomed():
            outcomes.record(
                lambda: _service_execute(service, _slow_query, timeout=0.05)
            )

        def healthy():
            outcomes.record(
                lambda: _service_execute(service, _fast_query, timeout=60.0)
            )

        threads = []
        for i in range(16):
            threads.append(
                threading.Thread(target=doomed if i % 4 == 0 else healthy)
            )
        _run_all(threads)

        assert outcomes.total == 16
        assert not outcomes.errors
        # the doomed class must actually produce timeouts (4 requests
        # with a 50ms deadline against ~0.5s queries cannot all finish)
        assert outcomes.timeouts >= 1
        assert outcomes.completed >= 1
        # every non-rejected request entered the executor
        assert (
            METRICS.counter("service.executions").value - executions_before
            >= outcomes.completed
        )
        _drained(service)

    def test_sustained_churn_leaks_nothing(self):
        # several waves through a tiny pool; between waves everything
        # must return to zero — slots, queue, compile locks, sessions
        service = _service(slots=2, max_queue=8)
        for wave in range(3):
            outcomes = Outcomes()
            threads = [
                threading.Thread(
                    target=outcomes.record,
                    args=(
                        lambda: _service_execute(
                            service, _fast_query, timeout=60.0
                        ),
                    ),
                )
                for _ in range(8)
            ]
            _run_all(threads)
            assert outcomes.completed + outcomes.rejected == 8
            assert not outcomes.errors
            _drained(service)
        # the query compiled exactly once across all waves
        assert service.provider.cache.stats.misses == 1


def _service_execute(service, query_factory, timeout):
    with service.session() as session:
        return session.execute(query_factory(service.provider), timeout=timeout)
