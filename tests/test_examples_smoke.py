"""Smoke tests: every shipped example runs to completion."""

import pathlib
import runpy
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "compiled engine agrees" in out
        assert "native engine" in out

    def test_sales_analytics(self, capsys):
        run_example("sales_analytics.py")
        out = capsys.readouterr().out
        assert "query cache" in out
        assert "hit rate" in out

    def test_tpch_demo_tiny(self, capsys):
        run_example("tpch_demo.py", argv=["0.002"])
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert out.count("agrees ✓") >= 10  # 4 non-reference engines × 3 queries

    def test_engine_tour(self, capsys):
        run_example("engine_tour.py")
        out = capsys.readouterr().out
        assert "optimized logical plan" in out
        assert "def execute" in out  # generated sources printed

    def test_physical_tuning(self, capsys):
        run_example("physical_tuning.py")
        out = capsys.readouterr().out
        assert "index lookup" in out
        assert "recycled" in out

    def test_serving(self, capsys):
        run_example("serving.py")
        out = capsys.readouterr().out
        assert "ad-hoc: 20 executions" in out
        assert "compiled once: True" in out
        assert "admission:" in out
        assert "prepared must agree" not in out
