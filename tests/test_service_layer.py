"""The query serving layer: sessions, prepared statements, admission,
deadlines, and cooperative cancellation.

Covers each component in isolation (token, admission controller,
executor) and the assembled serving path, including the two headline
guarantees:

* a prepared statement executed many times with different bindings
  compiles exactly once (``compile.<engine>.count`` moves by one);
* a query that exceeds its deadline raises ``QueryTimeoutError`` from
  *every* engine within 2x the deadline, while a concurrent query on the
  same provider completes normally.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionRejected,
    ExecutionError,
    QueryCancelled,
    QueryTimeoutError,
    SessionClosed,
)
from repro.observability.metrics import METRICS
from repro.query import QueryProvider, from_iterable
from repro.runtime.cancellation import (
    CANCEL_PARAM,
    CancellationToken,
    cancel_check,
)
from repro.service import (
    AdmissionController,
    QueryExecutor,
    QueryService,
    QuerySession,
    drain,
    query_timeout_from_env,
    service_slots_from_env,
)
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Svc")
OBJECTS = StructArray.from_rows(
    SCHEMA, [(i, i * 0.5) for i in range(200)]
).to_objects()

#: every engine family the deadline guarantee must hold for
DEADLINE_ENGINES = ("linq", "compiled", "native", "hybrid")


def _session(**kw):
    kw.setdefault("provider", QueryProvider())
    return QuerySession(**kw)


class TestCancellationToken:
    def test_fresh_token_passes_checks(self):
        token = CancellationToken()
        assert not token.cancelled
        token.check()  # no raise
        assert token.remaining() is None

    def test_cancel_sets_reason_and_check_raises(self):
        token = CancellationToken()
        token.cancel("client gone")
        assert token.cancelled and token.reason == "client gone"
        with pytest.raises(QueryCancelled):
            token.check()

    def test_deadline_raises_timeout_subclass(self):
        token = CancellationToken.with_timeout(0.001)
        time.sleep(0.01)
        assert token.cancelled
        with pytest.raises(QueryTimeoutError):
            token.check()

    def test_timeout_is_a_cancellation(self):
        assert issubclass(QueryTimeoutError, QueryCancelled)

    def test_none_timeout_means_no_deadline(self):
        token = CancellationToken.with_timeout(None)
        assert token.remaining() is None
        token.check()

    def test_remaining_counts_down(self):
        token = CancellationToken.with_timeout(10.0)
        assert 9.0 < token.remaining() <= 10.0

    def test_cancel_check_helper_reads_params(self):
        token = CancellationToken()
        cancel_check({})  # no token: no-op
        cancel_check({CANCEL_PARAM: token})
        token.cancel()
        with pytest.raises(QueryCancelled):
            cancel_check({CANCEL_PARAM: token})


class TestAdmissionController:
    def test_grant_within_slots_is_immediate(self):
        ctl = AdmissionController(slots=2)
        t1 = ctl.acquire()
        t2 = ctl.acquire()
        assert ctl.running == 2 and ctl.queue_depth == 0
        t1.release()
        t2.release()
        assert ctl.running == 0

    def test_release_is_idempotent(self):
        ctl = AdmissionController(slots=1)
        ticket = ctl.acquire()
        ticket.release()
        ticket.release()
        assert ctl.running == 0

    def test_queue_full_fast_fails(self):
        ctl = AdmissionController(slots=1, max_queue=0)
        held = ctl.acquire()
        with pytest.raises(AdmissionRejected):
            ctl.acquire()
        held.release()
        ctl.acquire().release()  # slot freed: admission works again

    def test_waiter_admitted_on_release(self):
        ctl = AdmissionController(slots=1)
        held = ctl.acquire()
        admitted = []

        def wait_then_record():
            ticket = ctl.acquire(timeout=5.0)
            admitted.append(ticket)
            ticket.release()

        thread = threading.Thread(target=wait_then_record)
        thread.start()
        for _ in range(100):
            if ctl.queue_depth == 1:
                break
            time.sleep(0.005)
        assert ctl.queue_depth == 1
        held.release()
        thread.join(timeout=5.0)
        assert len(admitted) == 1
        assert admitted[0].wait_seconds > 0.0

    def test_priority_orders_the_queue(self):
        ctl = AdmissionController(slots=1)
        held = ctl.acquire()
        order = []
        started = threading.Barrier(3)

        def waiter(priority):
            started.wait()
            # deterministic queue arrival: low priority enqueues first
            time.sleep(0.05 * (10 - priority))
            ticket = ctl.acquire(priority=priority, timeout=10.0)
            order.append(priority)
            time.sleep(0.01)
            ticket.release()

        threads = [
            threading.Thread(target=waiter, args=(p,)) for p in (0, 5, 9)
        ]
        for t in threads:
            t.start()
        for _ in range(200):
            if ctl.queue_depth == 3:
                break
            time.sleep(0.01)
        held.release()
        for t in threads:
            t.join(timeout=10.0)
        assert order == [9, 5, 0]

    def test_queue_wait_deadline_raises_timeout(self):
        ctl = AdmissionController(slots=1)
        held = ctl.acquire()
        with pytest.raises(QueryTimeoutError):
            ctl.acquire(timeout=0.05)
        held.release()
        assert ctl.queue_depth == 0  # the expired waiter left the queue

    def test_degradation_under_load(self):
        ctl = AdmissionController(slots=1)
        # empty queue: the request keeps its full parallelism
        ticket = ctl.acquire(parallelism=8)
        assert ticket.parallelism == 8
        # now one waiter queues; the next grant is downgraded
        results = []

        def contender():
            t = ctl.acquire(parallelism=8, timeout=10.0)
            results.append(t.parallelism)
            t.release()

        threads = [threading.Thread(target=contender) for _ in range(2)]
        for t in threads:
            t.start()
        for _ in range(200):
            if ctl.queue_depth == 2:
                break
            time.sleep(0.01)
        ticket.release()
        for t in threads:
            t.join(timeout=10.0)
        # first contender granted while one more still waited: 8 // 2 = 4;
        # the last one granted alone keeps 8
        assert sorted(results) == [4, 8]

    def test_slots_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_SLOTS", raising=False)
        assert service_slots_from_env() == 4
        monkeypatch.setenv("REPRO_SERVICE_SLOTS", "9")
        assert service_slots_from_env() == 9
        monkeypatch.setenv("REPRO_SERVICE_SLOTS", "junk")
        assert service_slots_from_env() == 4
        monkeypatch.setenv("REPRO_SERVICE_SLOTS", "0")
        assert service_slots_from_env() == 1


class TestQueryExecutor:
    def test_plain_run_returns_result(self):
        executor = QueryExecutor()
        assert executor.run(lambda: 42) == 42

    def test_deadline_bounds_a_stuck_worker(self):
        executor = QueryExecutor()
        token = CancellationToken.with_timeout(0.05)
        release = threading.Event()
        started = time.perf_counter()
        with pytest.raises(QueryTimeoutError):
            executor.run(lambda: release.wait(5.0), token=token)
        elapsed = time.perf_counter() - started
        assert elapsed < 0.05 * 2 + 0.5  # 2x deadline plus scheduling slack
        release.set()  # unblock the worker thread

    def test_cleanup_runs_on_success_and_failure(self):
        executor = QueryExecutor()
        calls = []
        executor.run(lambda: 1, cleanup=lambda: calls.append("ok"))
        with pytest.raises(RuntimeError):
            executor.run(
                lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                cleanup=lambda: calls.append("err"),
            )
        assert calls == ["ok", "err"]

    def test_worker_error_propagates(self):
        executor = QueryExecutor()
        token = CancellationToken.with_timeout(5.0)
        with pytest.raises(ZeroDivisionError):
            executor.run(lambda: 1 / 0, token=token)

    def test_timeout_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERY_TIMEOUT", raising=False)
        assert query_timeout_from_env() is None
        monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "2.5")
        assert query_timeout_from_env() == 2.5
        monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "0")
        assert query_timeout_from_env() is None
        monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "junk")
        assert query_timeout_from_env() is None

    def test_drain_checks_token_mid_iteration(self):
        token = CancellationToken()

        def rows():
            for i in range(10_000):
                if i == 500:
                    token.cancel()
                yield i

        with pytest.raises(QueryCancelled):
            drain(rows(), token, stride=256)


class TestSessionLifecycle:
    def test_session_defaults_flow_into_queries(self):
        session = _session(engine="compiled", parallelism=1)
        q = session.query(OBJECTS, schema=SCHEMA)
        assert q.engine == "compiled"
        assert q.provider is session.provider

    def test_execute_returns_rows(self):
        with _session(engine="compiled") as session:
            q = session.query(OBJECTS, schema=SCHEMA).where(lambda r: r.x < 5)
            assert len(session.execute(q)) == 5

    def test_closed_session_refuses_work(self):
        session = _session()
        session.close()
        with pytest.raises(SessionClosed):
            session.query(OBJECTS, schema=SCHEMA)
        with pytest.raises(SessionClosed):
            session.prepare(None)

    def test_context_manager_closes(self):
        with _session() as session:
            assert not session.closed
        assert session.closed
        session.close()  # idempotent

    def test_conflicting_service_and_provider_rejected(self):
        service = QueryService(provider=QueryProvider())
        with pytest.raises(ValueError):
            QuerySession(service=service, provider=QueryProvider())

    def test_sessions_share_the_service_cache(self):
        service = QueryService(provider=QueryProvider())
        with service.session(engine="compiled", parallelism=1) as one:
            q = one.query(OBJECTS, schema=SCHEMA).where(lambda r: r.x < 5)
            one.execute(q)
        with service.session(engine="compiled", parallelism=1) as two:
            q = two.query(OBJECTS, schema=SCHEMA).where(lambda r: r.x < 5)
            two.execute(q)
        stats = service.provider.cache.stats
        assert stats.misses == 1 and stats.hits == 1


class TestPreparedStatements:
    def test_prepare_once_execute_many_compiles_once(self):
        # the acceptance criterion: two executions with different
        # bindings move compile.<engine>.count by exactly one
        with _session(engine="compiled", parallelism=1) as session:
            before = METRICS.counter("compile.compiled.count").value
            limit = 7  # captured constant becomes a canonical parameter
            statement = session.prepare(
                session.query(OBJECTS, schema=SCHEMA)
                .where(lambda r: r.x < limit)
                .select(lambda r: r.x)
            )
            first = statement.execute(**{statement.bind_names[0]: 5})
            second = statement.execute(**{statement.bind_names[0]: 11})
            assert METRICS.counter("compile.compiled.count").value == before + 1
        assert len(first) == 5
        assert len(second) == 11

    def test_bound_statement_layers_bindings(self):
        with _session(engine="compiled", parallelism=1) as session:
            limit = 3
            statement = session.prepare(
                session.query(OBJECTS, schema=SCHEMA).where(
                    lambda r: r.x < limit
                )
            )
            name = statement.bind_names[0]
            bound = statement.bind(**{name: 4})
            assert len(bound.execute()) == 4
            assert len(bound.to_list()) == 4
            rebound = bound.bind(**{name: 6})
            assert len(rebound.execute()) == 6
            assert len(bound.execute()) == 4  # original unchanged

    def test_prepared_linq_engine(self):
        with _session(engine="linq") as session:
            statement = session.prepare(
                session.query(OBJECTS, schema=SCHEMA).where(lambda r: r.x < 5)
            )
            assert statement.engine == "linq"
            assert len(statement.execute()) == 5

    def test_prepared_respects_deadline(self):
        with _session(engine="compiled") as session:
            statement = session.prepare(
                _slow_query(session.provider, "compiled")
            )
            with pytest.raises(QueryTimeoutError):
                statement.execute(timeout=0.05)


class TestServingObservability:
    def test_explain_analyze_gains_queue_wait_phase(self):
        with _session(engine="compiled", parallelism=1) as session:
            q = session.query(OBJECTS, schema=SCHEMA).where(lambda r: r.x < 5)
            report = session.explain_analyze(q)
        assert "service.queue_wait" in report.phases
        assert "service.execute" in report.phases
        assert report.rows == 5
        rendered = report.render()
        assert "service.queue_wait" in rendered


# -- deadline acceptance: every engine, bounded at 2x, no collateral damage --
#
# Slowness comes from data volume, not the predicate: the expression
# builder traces callables once (symbolically), so per-row sleeps never
# run per row.  The row-at-a-time engines (linq, compiled, hybrid) take
# ~0.5-1.5s over 100k struct-array rows; the vectorized native engine
# needs a 2M-row sort to exceed the deadline reliably.

SLOW_SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Slow")


def _slow_array(n, seed=0):
    data = np.zeros(n, dtype=SLOW_SCHEMA.numpy_dtype())
    rng = np.random.default_rng(seed)
    data["x"] = rng.integers(0, n, n)
    data["y"] = rng.random(n)
    return StructArray(SLOW_SCHEMA, data)


SLOW_ROWS = _slow_array(100_000)
SLOW_ROWS_NATIVE = _slow_array(2_000_000)


def _slow_query(provider, engine):
    """A query that takes well over any test deadline on *engine*."""
    from repro import from_struct_array

    if engine == "native":
        return (
            from_struct_array(SLOW_ROWS_NATIVE)
            .using("native", provider)
            .where(lambda r: r.y > 0.1)
            .order_by(lambda r: r.y)
            .select(lambda r: r.x)
        )
    return (
        from_struct_array(SLOW_ROWS)
        .using(engine, provider)
        .where(lambda r: r.x % 7 > 2)
        .select(lambda r: r.y)
    )


class TestDeadlineAcrossEngines:
    @pytest.mark.parametrize("engine", DEADLINE_ENGINES)
    def test_deadline_raises_within_2x_everywhere(self, engine):
        deadline = 0.05
        with _session(engine=engine) as session:
            q = _slow_query(session.provider, engine)
            started = time.perf_counter()
            with pytest.raises(QueryTimeoutError):
                session.execute(q, timeout=deadline)
            elapsed = time.perf_counter() - started
        # 2x the deadline, plus fixed scheduling slack for thread startup
        assert elapsed < deadline * 2 + 1.0

    def test_concurrent_query_survives_neighbor_timeout(self):
        provider = QueryProvider()
        service = QueryService(provider=provider)
        outcome = {}

        def doomed():
            with service.session() as session:
                try:
                    session.execute(
                        _slow_query(provider, "compiled"), timeout=0.05
                    )
                    outcome["doomed"] = "finished"
                except QueryTimeoutError:
                    outcome["doomed"] = "timeout"

        def healthy():
            with service.session(engine="compiled") as session:
                q = session.query(OBJECTS, schema=SCHEMA).where(
                    lambda r: r.x < 100
                )
                outcome["healthy"] = len(session.execute(q, timeout=None))

        threads = [
            threading.Thread(target=doomed),
            threading.Thread(target=healthy),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert outcome == {"doomed": "timeout", "healthy": 100}
        # the provider's compile locks and slot pool survived the timeout;
        # the doomed *worker* releases its slot at its next checkpoint,
        # which can be after the caller already got its QueryTimeoutError
        for _ in range(600):
            if service.admission.running == 0 and not provider._key_locks:
                break
            time.sleep(0.05)
        assert provider._key_locks == {}
        assert service.admission.running == 0

    def test_session_close_cancels_inflight(self):
        service = QueryService(provider=QueryProvider())
        session = service.session()
        q = _slow_query(service.provider, "linq")
        result = {}

        def run():
            try:
                session.execute(q, timeout=None)
                result["run"] = "finished"
            except QueryCancelled as exc:
                result["run"] = exc.reason

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.1)  # let it get past admission and into execution
        session.close()
        thread.join(timeout=60.0)
        assert result["run"] in ("session closed", "finished")


class TestScalarGuard:
    def test_bound_to_list_returns_rows(self):
        with _session(engine="compiled", parallelism=1) as session:
            statement = session.prepare(
                session.query(OBJECTS, schema=SCHEMA).select(lambda r: r.y)
            )
            assert not statement.scalar
            assert statement.source_code  # generated module captured
            assert len(statement.bind().to_list()) == len(OBJECTS)

    def test_bound_to_list_refuses_non_list_results(self):
        with _session(engine="compiled", parallelism=1) as session:
            statement = session.prepare(
                session.query(OBJECTS, schema=SCHEMA).select(lambda r: r.y)
            )
            bound = statement.bind()
            # scalar shapes come back as bare values; to_list must refuse
            statement.execute = lambda **kw: 42
            with pytest.raises(ExecutionError):
                bound.to_list()
