"""Unit tests for expression node structure, equality and hashing."""

import pytest

from repro.expressions import (
    AggCall,
    Binary,
    Constant,
    Lambda,
    Member,
    New,
    Param,
    QueryOp,
    SourceExpr,
    Unary,
    Var,
    children,
    structural_key,
    walk,
)


class TestStructuralEquality:
    def test_constants_equal_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("a") != Constant(b"a")

    def test_constants_with_unhashable_values_are_hashable(self):
        assert hash(Constant([1, 2])) == hash(Constant([1, 2]))
        assert Constant([1, 2]) == Constant([1, 2])
        assert Constant({"k": 1}) == Constant({"k": 1})
        assert Constant({1, 2}) == Constant({2, 1})

    def test_binary_equality_is_structural(self):
        a = Binary("eq", Member(Var("s"), "name"), Constant("x"))
        b = Binary("eq", Member(Var("s"), "name"), Constant("x"))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_ops_not_equal(self):
        a = Binary("eq", Var("x"), Constant(1))
        b = Binary("ne", Var("x"), Constant(1))
        assert a != b


class TestValidation:
    def test_unknown_binary_op_rejected(self):
        with pytest.raises(ValueError, match="unknown binary"):
            Binary("xor", Var("x"), Var("y"))

    def test_unknown_unary_op_rejected(self):
        with pytest.raises(ValueError, match="unknown unary"):
            Unary("sqrt", Var("x"))

    def test_unknown_query_op_rejected(self):
        with pytest.raises(ValueError, match="unknown query operator"):
            QueryOp("frobnicate", SourceExpr(0, "T"))

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            AggCall("median", Lambda(("s",), Var("s")))

    def test_non_count_aggregate_requires_selector(self):
        with pytest.raises(ValueError, match="requires a selector"):
            AggCall("sum", None)

    def test_count_aggregate_allows_no_selector(self):
        assert AggCall("count", None).kind == "count"


class TestTraversal:
    def test_children_of_leaves_empty(self):
        assert children(Constant(1)) == ()
        assert children(Var("x")) == ()
        assert children(Param("p")) == ()
        assert children(SourceExpr(0, "T")) == ()

    def test_children_order_binary(self):
        left, right = Var("a"), Var("b")
        assert children(Binary("add", left, right)) == (left, right)

    def test_walk_visits_every_node(self):
        expr = Binary(
            "and", Binary("eq", Var("x"), Constant(1)), Unary("not", Var("y"))
        )
        kinds = [type(n).__name__ for n in walk(expr)]
        assert kinds.count("Binary") == 2
        assert kinds.count("Var") == 2
        assert "Unary" in kinds
        assert "Constant" in kinds

    def test_walk_preorder_root_first(self):
        expr = Binary("add", Var("a"), Var("b"))
        assert next(iter(walk(expr))) is expr


class TestStructuralKey:
    def test_key_distinguishes_node_kinds(self):
        assert structural_key(Var("x")) != structural_key(Param("x"))

    def test_key_equal_for_equal_trees(self):
        t1 = QueryOp(
            "where",
            SourceExpr(0, "City"),
            (Lambda(("s",), Binary("eq", Member(Var("s"), "name"), Param("p"))),),
        )
        t2 = QueryOp(
            "where",
            SourceExpr(0, "City"),
            (Lambda(("s",), Binary("eq", Member(Var("s"), "name"), Param("p"))),),
        )
        assert structural_key(t1) == structural_key(t2)

    def test_key_differs_on_schema_token(self):
        a = SourceExpr(0, "City")
        b = SourceExpr(0, "Shop")
        assert structural_key(a) != structural_key(b)

    def test_key_differs_on_member_name(self):
        a = Member(Var("s"), "population")
        b = Member(Var("s"), "name")
        assert structural_key(a) != structural_key(b)

    def test_key_captures_new_field_order(self):
        a = New((("x", Var("a")), ("y", Var("b"))))
        b = New((("y", Var("b")), ("x", Var("a"))))
        assert structural_key(a) != structural_key(b)

    def test_new_field_names_property(self):
        n = New((("x", Constant(1)), ("y", Constant(2))))
        assert n.field_names == ("x", "y")
