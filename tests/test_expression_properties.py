"""Property tests over randomly generated expression trees.

Three invariants, each checked on hypothesis-generated trees:

* the interpreter and the printed-then-eval'd source agree (the §4 premise
  that inlined code preserves interpreted semantics);
* constant folding never changes a tree's value;
* parameterization round-trips: evaluating the lifted tree with its
  bindings equals evaluating the original.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expressions import (
    Binary,
    Conditional,
    Constant,
    Member,
    ScalarPrinter,
    Unary,
    Var,
    canonicalize,
    fold_constants,
    interpret,
    parameterize,
)

_ELEMENT = SimpleNamespace(a=3, b=-7, c=12)

_NUMERIC_BINOPS = ("add", "sub", "mul")
_COMPARISONS = ("eq", "ne", "lt", "le", "gt", "ge")


@st.composite
def numeric_expr(draw, depth=3):
    """A random integer-valued expression over Vars and Constants."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return Constant(draw(st.integers(-50, 50)))
        return Member(Var("s"), draw(st.sampled_from(["a", "b", "c"])))
    kind = draw(st.sampled_from(["binary", "unary", "conditional"]))
    if kind == "binary":
        return Binary(
            draw(st.sampled_from(_NUMERIC_BINOPS)),
            draw(numeric_expr(depth=depth - 1)),
            draw(numeric_expr(depth=depth - 1)),
        )
    if kind == "unary":
        return Unary(
            draw(st.sampled_from(["neg", "abs"])),
            draw(numeric_expr(depth=depth - 1)),
        )
    condition = Binary(
        draw(st.sampled_from(_COMPARISONS)),
        draw(numeric_expr(depth=depth - 1)),
        draw(numeric_expr(depth=depth - 1)),
    )
    return Conditional(
        condition,
        draw(numeric_expr(depth=depth - 1)),
        draw(numeric_expr(depth=depth - 1)),
    )


class TestRandomExpressionInvariants:
    @given(numeric_expr())
    @settings(max_examples=150, deadline=None)
    def test_printer_matches_interpreter(self, expr):
        interpreted = interpret(expr, env={"s": _ELEMENT})
        printer = ScalarPrinter(var_map={"s": "element"})
        source = printer.emit(expr)
        scope = dict(printer.namespace)
        scope["element"] = _ELEMENT
        compiled = eval(source, scope)  # noqa: S307 - our own codegen
        assert compiled == interpreted

    @given(numeric_expr())
    @settings(max_examples=150, deadline=None)
    def test_constant_folding_preserves_value(self, expr):
        folded = fold_constants(expr)
        assert interpret(folded, env={"s": _ELEMENT}) == interpret(
            expr, env={"s": _ELEMENT}
        )

    @given(numeric_expr())
    @settings(max_examples=150, deadline=None)
    def test_parameterization_round_trips(self, expr):
        lifted, bindings = parameterize(expr)
        assert interpret(lifted, env={"s": _ELEMENT}, params=bindings) == interpret(
            expr, env={"s": _ELEMENT}
        )

    @given(numeric_expr(), numeric_expr())
    @settings(max_examples=100, deadline=None)
    def test_canonical_keys_respect_structure(self, left, right):
        # two trees share a canonical key iff they differ only in constants;
        # here we only require the cheap direction: equal trees ⇒ equal keys
        assert canonicalize(left).key == canonicalize(left).key
        if left == right:
            assert canonicalize(left).key == canonicalize(right).key

    @given(numeric_expr())
    @settings(max_examples=100, deadline=None)
    def test_variable_free_trees_fold_to_constants(self, expr):
        from repro.expressions import free_vars

        if not free_vars(expr):
            folded = fold_constants(expr)
            assert isinstance(folded, Constant)


# ---------------------------------------------------------------------------
# Set-operation algebra: engine results vs a collections.Counter oracle
# ---------------------------------------------------------------------------

_rows = st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(["aa", "bb"])), max_size=12
)


class TestSetOperationAlgebra:
    """Bag-semantics laws, checked against multiset arithmetic.

    ``union_all`` is concatenation; ``intersect`` keeps the first
    ``min(l, r)`` copies of each row; ``except_`` keeps the copies beyond
    the right count; ``union`` dedups in first-occurrence order.  The
    oracle is ``collections.Counter`` — the ground truth the probe-and-
    decrement multiset build must reproduce, element order included.
    """

    ENGINES = ("linq", "compiled")

    @staticmethod
    def _queries(left_rows, right_rows, engine):
        from repro.query import from_iterable
        from repro.storage import Field, Schema, StructArray

        schema = Schema([Field("a", "int"), Field("s", "str", 2)], name="P")
        left = StructArray.from_rows(schema, left_rows).to_objects()
        right = StructArray.from_rows(schema, right_rows).to_objects()
        return (
            from_iterable(left, schema=schema).using(engine),
            from_iterable(right, schema=schema).using(engine),
        )

    @staticmethod
    def _tuples(rows):
        return [(r.a, r.s) for r in rows]

    @given(_rows, _rows)
    @settings(max_examples=60, deadline=None)
    def test_union_all_is_concatenation(self, lrows, rrows):
        for engine in self.ENGINES:
            left, right = self._queries(lrows, rrows, engine)
            got = self._tuples(left.union_all(right).to_list())
            assert got == lrows + rrows

    @given(_rows, _rows)
    @settings(max_examples=60, deadline=None)
    def test_intersect_matches_counter_min(self, lrows, rrows):
        from collections import Counter

        for engine in self.ENGINES:
            left, right = self._queries(lrows, rrows, engine)
            got = self._tuples(left.intersect(right).to_list())
            assert Counter(got) == Counter(lrows) & Counter(rrows)
            # first-min(l, r)-copies order: got is a subsequence of lrows
            it = iter(lrows)
            assert all(any(x == y for y in it) for x in got)

    @given(_rows, _rows)
    @settings(max_examples=60, deadline=None)
    def test_except_matches_counter_difference(self, lrows, rrows):
        from collections import Counter

        for engine in self.ENGINES:
            left, right = self._queries(lrows, rrows, engine)
            got = self._tuples(left.except_(right).to_list())
            assert Counter(got) == Counter(lrows) - Counter(rrows)

    @given(_rows, _rows)
    @settings(max_examples=60, deadline=None)
    def test_intersect_except_partition_the_left_side(self, lrows, rrows):
        """Every left row lands in exactly one of intersect/except, and
        merging the two back together restores the left side in order."""
        for engine in self.ENGINES:
            left, right = self._queries(lrows, rrows, engine)
            kept = self._tuples(left.intersect(right).to_list())
            dropped = self._tuples(left.except_(right).to_list())
            assert sorted(kept + dropped) == sorted(lrows)

    @given(_rows, _rows)
    @settings(max_examples=60, deadline=None)
    def test_union_dedups_in_first_occurrence_order(self, lrows, rrows):
        for engine in self.ENGINES:
            left, right = self._queries(lrows, rrows, engine)
            got = self._tuples(left.union(right).to_list())
            seen, expected = set(), []
            for row in lrows + rrows:
                if row not in seen:
                    seen.add(row)
                    expected.append(row)
            assert got == expected
