"""Shard ownership: pinned snapshots survive the spawn boundary intact.

A shard payload pickled to a spawn-context child process and
materialized there must describe the same table the coordinator pinned:
same dtype, length, version, index set (rebuilt fresh, never stale) and
clustering metadata — and appends to the live array after the pin must
be invisible to every shard.
"""

import multiprocessing
import pickle
import random

from repro.distributed.shards import (
    broadcast_payload,
    materialize,
    pin,
    probe_shard,
    shard_bounds,
    shard_payload,
    table_token,
    table_uid,
)
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema(
    [
        Field("rid", "int"),
        Field("g", "int"),
        Field("v", "float"),
        Field("s", "str", 4),
    ],
    name="ShardT",
)

_VOCAB = ["aa", "bb", "cc", "dd"]


def _rows(rng, n):
    return [
        (
            rng.randrange(10_000),
            rng.randrange(6),
            rng.randrange(-200, 200) * 0.25,
            rng.choice(_VOCAB),
        )
        for _ in range(n)
    ]


def _array(n=64, seed=7):
    return StructArray.from_rows(SCHEMA, _rows(random.Random(seed), n))


def test_shard_bounds_deterministic_and_total():
    assert shard_bounds(0, 4) == [(0, 0)]
    assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]
    assert shard_bounds(2, 8) == [(0, 1), (1, 2)]  # never more shards than rows
    for total, shards in [(1, 1), (97, 4), (1000, 7)]:
        bounds = shard_bounds(total, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == total
        assert all(lo <= hi for lo, hi in bounds)
        assert bounds == shard_bounds(total, shards)  # resubmission re-slices alike


def test_table_uid_shared_across_snapshots():
    live = _array()
    uid = table_uid(live)
    assert table_uid(live.snapshot()) == uid
    assert table_uid(live.snapshot()) == uid  # successive snapshots, one residency
    assert table_uid(_array(seed=8)) != uid


def test_pin_hides_concurrent_appends():
    live = _array(40)
    snap = pin(live)
    token_before = table_token(snap, ("shard", 0, 40))
    live.append_rows(_rows(random.Random(1), 8))
    assert len(snap) == 40  # appends after the pin are invisible
    assert table_token(snap, ("shard", 0, 40)) == token_before
    fresh = pin(live)
    assert len(fresh) == 48
    # the new watermark yields a new token: workers will not serve stale rows
    assert table_token(fresh, ("shard", 0, 40)) != token_before
    # but the uid component is shared — same residency slot, superseded in place
    assert table_token(fresh, ("shard", 0, 40))[0] == token_before[0]


def test_in_process_round_trip_preserves_rows_and_metadata():
    live = _array(50)
    live.create_index("g")
    snap = pin(live)
    shard = shard_payload(snap, 10, 30)
    rebuilt = materialize(pickle.loads(pickle.dumps(shard)))
    assert len(rebuilt) == 20
    assert rebuilt.frozen
    assert rebuilt.version == snap.version
    assert str(rebuilt.data.dtype) == str(snap.data.dtype)
    assert rebuilt.data.tolist() == snap.data[10:30].tolist()
    # indexes are rebuilt locally over the shard's own rows, never stale
    assert rebuilt.index_fields() == ("g",)
    assert not rebuilt.get_index("g").stale()


def test_clustering_survives_slicing():
    clustered = _array(60).cluster_by("rid")
    snap = pin(clustered)
    shard = shard_payload(snap, 15, 45)
    rebuilt = materialize(pickle.loads(pickle.dumps(shard)))
    # a contiguous slice of a sorted array is still sorted, so the
    # clustering column stays trusted (binary-search range scans valid)
    assert rebuilt.clustering == "rid"
    col = [row[0] for row in rebuilt.data.tolist()]
    assert col == sorted(col)


def test_probe_shard_across_spawn_process():
    """The full wire path: pickle → spawn child → materialize → describe."""
    live = _array(48, seed=11)
    live.create_index("g")
    snap = pin(live)
    bounds = shard_bounds(len(snap), 2)
    shards = [shard_payload(snap, lo, hi) for lo, hi in bounds]
    full = broadcast_payload(snap)
    blobs = [pickle.dumps(s) for s in shards + [full]]

    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        reports = [pool.apply(probe_shard, (blob,)) for blob in blobs]

    for shard, report in zip(shards, reports):
        lo, hi = shard.window
        assert report["token"] == shard.token
        assert report["dtype"] == str(snap.data.dtype)
        assert report["length"] == hi - lo
        assert report["version"] == snap.version
        assert report["frozen"] is True
        assert report["index_fields"] == ("g",)
        assert report["indexes_fresh"] is True
        assert report["first_row"] == tuple(snap.data[lo].item())
        assert report["last_row"] == tuple(snap.data[hi - 1].item())
    full_report = reports[-1]
    assert full_report["token"][3] == ("full",)
    assert full_report["length"] == len(snap)
    assert full_report["first_row"] == tuple(snap.data[0].item())
    assert full_report["last_row"] == tuple(snap.data[-1].item())
