"""Tests for the Query surface, QList, provider dispatch and the cache."""

from types import SimpleNamespace

import pytest

from repro.errors import ExecutionError, TraceError, TranslationError
from repro.expressions import P, new
from repro.query import (
    ENGINES,
    QList,
    QueryCache,
    QueryProvider,
    from_iterable,
    from_struct_array,
)
from repro.storage import Field, Schema, StructArray


def item(**kw):
    return SimpleNamespace(**kw)


ITEMS = [item(x=1, name="a"), item(x=2, name="b"), item(x=3, name="a")]


class TestSources:
    def test_from_iterable_rejects_one_shot_iterators(self):
        with pytest.raises(ExecutionError, match="re-iterable"):
            from_iterable(iter(ITEMS))

    def test_token_derived_from_element_type(self):
        q = from_iterable(ITEMS)
        assert q.expr.schema_token == "obj:SimpleNamespace"

    def test_explicit_token_wins(self):
        q = from_iterable(ITEMS, token="my:token")
        assert q.expr.schema_token == "my:token"

    def test_empty_collection_token(self):
        assert from_iterable([]).expr.schema_token == "obj:empty"

    def test_struct_array_token_is_schema_token(self):
        schema = Schema([Field("x", "int")], name="T")
        array = StructArray.from_rows(schema, [(1,)])
        assert from_struct_array(array).expr.schema_token == schema.token


class TestQList:
    def test_wraps_and_queries(self):
        ql = QList(ITEMS)
        assert ql.where(lambda s: s.x > 1).count() == 2
        assert ql.select(lambda s: s.x).to_list() == [1, 2, 3]
        assert [r.x for r in ql.order_by(lambda s: -s.x)] == [3, 2, 1]

    def test_group_by_shortcut(self):
        rows = QList(ITEMS).group_by(
            lambda s: s.name, lambda g: new(name=g.key, n=g.count())
        ).to_list()
        assert {(r.name, r.n) for r in rows} == {("a", 2), ("b", 1)}

    def test_is_still_a_list(self):
        ql = QList([1, 2, 3])
        ql.append(4)
        assert len(ql) == 4


class TestImmutability:
    def test_operators_return_new_queries(self):
        q = from_iterable(ITEMS)
        filtered = q.where(lambda s: s.x > 1)
        assert q is not filtered
        assert q.count() == 3 and filtered.count() == 2

    def test_with_params_does_not_mutate(self):
        q = from_iterable(ITEMS).where(lambda s: s.x > P("t"))
        bound = q.with_params(t=1)
        assert bound.params == {"t": 1}
        assert q.params == {}

    def test_using_switches_engine(self):
        q = from_iterable(ITEMS)
        assert q.engine == "compiled"
        assert q.using("linq").engine == "linq"


class TestJoinSourceMerging:
    def test_ordinals_shift(self):
        left = from_iterable(ITEMS, token="t:L")
        right = from_iterable([item(x=1, y=9)], token="t:R")
        joined = left.join(
            right, lambda a: a.x, lambda b: b.x, lambda a, b: new(x=a.x, y=b.y)
        )
        assert len(joined.sources) == 2
        rows = joined.to_list()
        assert [(r.x, r.y) for r in rows] == [(1, 9)]

    def test_three_way_join_sources(self):
        a = from_iterable([item(k=1)], token="t:A")
        b = from_iterable([item(k=1)], token="t:B")
        c = from_iterable([item(k=1)], token="t:C")
        joined = a.join(
            b.join(c, lambda x: x.k, lambda y: y.k, lambda x, y: new(k=x.k)),
            lambda x: x.k,
            lambda y: y.k,
            lambda x, y: new(k=x.k),
        )
        assert len(joined.sources) == 3
        assert joined.count() == 1

    def test_join_non_query_rejected(self):
        with pytest.raises(TranslationError, match="must be a Query"):
            from_iterable(ITEMS).join(
                [1, 2], lambda a: a.x, lambda b: b, lambda a, b: a
            )


class TestProviderDispatch:
    def test_explain_shows_plan(self):
        q = from_iterable(ITEMS).where(lambda s: s.x > 1).take(1)
        text = q.explain()
        assert "Filter" in text and "Limit" in text

    def test_explain_linq(self):
        assert "interpreted" in from_iterable(ITEMS).using("linq").explain()

    def test_scalar_query_through_iteration_rejected(self):
        provider = QueryProvider()
        from repro.expressions.nodes import QueryOp

        q = from_iterable(ITEMS).using("compiled", provider)
        count_expr = QueryOp("count", q.expr, ())
        with pytest.raises(ExecutionError, match="scalar"):
            provider.execute(count_expr, list(q.sources), "compiled", {})

    def test_engines_constant_lists_all(self):
        assert set(ENGINES) >= {
            "linq", "compiled", "native", "hybrid", "hybrid_buffered",
        }


class TestCacheBehaviour:
    def test_same_shape_different_constants_one_compile(self):
        provider = QueryProvider()
        base = from_iterable(ITEMS, token="t:C").using("compiled", provider)
        base.where(lambda s: s.x > 1).to_list()
        base.where(lambda s: s.x > 2).to_list()
        base.where(lambda s: s.x > 999).to_list()
        assert provider.cache.stats.misses == 1
        assert provider.cache.stats.hits == 2

    def test_different_engines_separate_entries(self):
        provider = QueryProvider()
        objs = from_iterable(ITEMS, token="t:E").using("compiled", provider)
        assert objs.sum(lambda s: s.x) == objs.using("hybrid", provider).sum(
            lambda s: s.x
        )
        assert provider.cache.stats.misses == 2

    def test_different_shapes_separate_entries(self):
        provider = QueryProvider()
        base = from_iterable(ITEMS, token="t:S").using("compiled", provider)
        base.where(lambda s: s.x > 1).to_list()
        base.where(lambda s: s.x < 1).to_list()
        assert provider.cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = QueryCache(max_entries=2)
        provider = QueryProvider(cache=cache)
        base = from_iterable(ITEMS, token="t:LRU").using("compiled", provider)
        base.where(lambda s: s.x > 1).to_list()       # A
        base.select(lambda s: s.x).to_list()          # B
        base.order_by(lambda s: s.x).to_list()        # C evicts A
        # two evictions: compiled entry A plus its analysis entry (both
        # stores share the same budget and both count)
        assert cache.stats.evictions == 2
        base.where(lambda s: s.x > 1).to_list()       # A again: miss
        assert cache.stats.misses == 4

    def test_cache_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)

    def test_clear_resets(self):
        cache = QueryCache()
        provider = QueryProvider(cache=cache)
        from_iterable(ITEMS, token="t:clear").using("compiled", provider).count()
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class TestErrorPropagation:
    def test_trace_error_at_definition_time(self):
        q = from_iterable(ITEMS)
        with pytest.raises(TraceError):
            q.where(lambda s: s.x > 1 and s.x < 3)  # `and` is untraceable

    def test_missing_param_at_execution(self):
        q = from_iterable(ITEMS).where(lambda s: s.x > P("missing"))
        with pytest.raises(KeyError):
            q.to_list()

    def test_missing_attribute_at_analysis(self):
        # the static analyzer rejects the unknown member before codegen
        # (previously this surfaced as an AttributeError out of the
        # generated code at execution time)
        from repro.errors import QueryAnalysisError

        q = from_iterable(ITEMS).using("compiled").select(lambda s: s.nope)
        with pytest.raises(QueryAnalysisError, match="no member 'nope'"):
            q.to_list()

    def test_repr(self):
        q = from_iterable(ITEMS)
        assert "Query(" in repr(q)


class TestSelectMany:
    def test_flattens(self):
        data = [item(name="a", tags=["x", "y"]), item(name="b", tags=["z"])]
        for engine in ("linq", "compiled"):
            q = from_iterable(data, token="t:sm").using(engine)
            flat = q.select_many(lambda s: s.tags).to_list()
            assert flat == ["x", "y", "z"], engine

    def test_result_selector(self):
        data = [item(name="a", tags=["x", "y"])]
        for engine in ("linq", "compiled"):
            q = from_iterable(data, token="t:sm2").using(engine)
            rows = q.select_many(
                lambda s: s.tags, lambda s, t: new(name=s.name, tag=t)
            ).to_list()
            assert [(r.name, r.tag) for r in rows] == [("a", "x"), ("a", "y")], engine


class TestConcatUnion:
    def test_concat(self):
        a = from_iterable([item(x=1)], token="t:ca")
        b = from_iterable([item(x=2)], token="t:cb")
        for engine in ("linq", "compiled"):
            assert [r.x for r in a.using(engine).concat(b)] == [1, 2], engine

    def test_union_deduplicates(self):
        a = from_iterable([1, 2], token="t:ua")
        b = from_iterable([2, 3], token="t:ub")
        for engine in ("linq", "compiled"):
            assert a.using(engine).union(b).to_list() == [1, 2, 3], engine

    def test_union_all_keeps_duplicates(self):
        a = from_iterable([1, 2, 2], token="t:uaa")
        b = from_iterable([2, 3], token="t:uab")
        for engine in ("linq", "compiled"):
            got = a.using(engine).union_all(b).to_list()
            assert got == [1, 2, 2, 2, 3], engine

    def test_union_and_union_all_differ_on_duplicates(self):
        # the regression the explicit bag/set split exists for: the two
        # spellings must never silently alias each other
        a = from_iterable([1, 1, 2], token="t:uda")
        b = from_iterable([1, 3], token="t:udb")
        distinct = a.union(b).to_list()
        bag = a.union_all(b).to_list()
        assert distinct == [1, 2, 3]
        assert bag == [1, 1, 2, 1, 3]

    def test_union_all_true_kwarg_deprecated(self):
        a = from_iterable([1, 2], token="t:uka")
        b = from_iterable([2, 3], token="t:ukb")
        with pytest.warns(DeprecationWarning, match="union_all"):
            got = a.union(b, all=True).to_list()
        assert got == [1, 2, 2, 3]

    def test_union_default_emits_no_warning(self):
        import warnings

        a = from_iterable([1, 2], token="t:uwa")
        b = from_iterable([2, 3], token="t:uwb")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert a.union(b).to_list() == [1, 2, 3]

    def test_intersect_and_except_bag_counts(self):
        a = from_iterable([1, 1, 2, 3, 3, 3], token="t:iba")
        b = from_iterable([1, 3, 3], token="t:ibb")
        for engine in ("linq", "compiled"):
            assert a.using(engine).intersect(b).to_list() == [1, 3, 3], engine
            assert a.using(engine).except_(b).to_list() == [1, 2, 3], engine

    def test_setop_non_query_operand_rejected(self):
        a = from_iterable([1, 2], token="t:sqa")
        with pytest.raises(TranslationError):
            a.union_all([3, 4])


class TestMoreTerminals:
    def _q(self, engine="compiled"):
        return from_iterable(ITEMS, token="t:more").using(engine)

    def test_single(self):
        assert self._q().single(lambda s: s.x == 2).name == "b"

    def test_single_rejects_multiple(self):
        with pytest.raises(ExecutionError, match="more than one"):
            self._q().single(lambda s: s.name == "a")

    def test_single_rejects_empty(self):
        with pytest.raises(ExecutionError, match="no matching"):
            self._q().single(lambda s: s.x == 99)

    def test_element_at(self):
        assert self._q().select(lambda s: s.x).element_at(1) == 2

    def test_element_at_out_of_range(self):
        with pytest.raises(ExecutionError, match="no element at index"):
            self._q().element_at(99)

    def test_element_at_negative(self):
        with pytest.raises(ExecutionError, match="non-negative"):
            self._q().element_at(-1)

    def test_reverse(self):
        assert self._q().select(lambda s: s.x).reverse() == [3, 2, 1]

    def test_to_dict(self):
        mapping = self._q().where(lambda s: s.x < 3).to_dict(
            key=lambda r: r.x, value=lambda r: r.name
        )
        assert mapping == {1: "a", 2: "b"}

    def test_to_dict_duplicate_keys(self):
        with pytest.raises(ExecutionError, match="duplicate key"):
            self._q().to_dict(key=lambda r: r.name)

    def test_aggregate_fold(self):
        total = self._q().select(lambda s: s.x).aggregate(0, lambda acc, x: acc + x)
        assert total == 6


class TestProviderThreadSafety:
    def test_concurrent_first_compilations_share_one_entry(self):
        import threading

        provider = QueryProvider()
        source = [item(x=i) for i in range(1000)]
        results = []
        errors = []

        def work():
            try:
                q = (
                    from_iterable(source, token="t:threads")
                    .using("compiled", provider)
                    .where(lambda s: s.x > 500)
                )
                results.append(q.count())
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == [499] * 8
        # the lock serialized compilation: exactly one cache entry
        assert len(provider.cache) == 1
