"""HashIndex over StructArray columns (§9 future-work extension).

The index is built eagerly (value → ascending row positions) and consulted
by the native backend for equality predicates; these tests pin the direct
lookup contract — build, duplicates, managed-vs-native key encodings, the
registration API on StructArray — independent of any query.
"""

import datetime

import numpy as np
import pytest

from repro.storage import Field, Schema, StructArray
from repro.storage.index import HashIndex

SCHEMA = Schema(
    [
        Field("id", "int"),
        Field("grade", "str", size=4),
        Field("score", "float"),
        Field("day", "date"),
    ],
    name="Idx",
)

ROWS = [
    (3, "b", 0.5, datetime.date(2020, 1, 4)),
    (1, "a", 1.5, datetime.date(2020, 1, 2)),
    (3, "a", 2.5, datetime.date(2020, 1, 4)),
    (2, "c", 0.5, datetime.date(2020, 1, 3)),
    (1, "b", 3.5, datetime.date(2020, 1, 2)),
]
ARRAY = StructArray.from_rows(SCHEMA, ROWS)


class TestBuildAndLookup:
    def test_positions_are_ascending(self):
        index = HashIndex(ARRAY, "id")
        assert index.lookup(3).tolist() == [0, 2]
        assert index.lookup(1).tolist() == [1, 4]
        assert index.lookup(2).tolist() == [3]

    def test_missing_value_returns_empty(self):
        index = HashIndex(ARRAY, "id")
        hits = index.lookup(99)
        assert isinstance(hits, np.ndarray)
        assert len(hits) == 0

    def test_len_counts_distinct_values(self):
        assert len(HashIndex(ARRAY, "id")) == 3
        assert len(HashIndex(ARRAY, "grade")) == 3
        assert len(HashIndex(ARRAY, "score")) == 4

    def test_all_rows_covered_exactly_once(self):
        index = HashIndex(ARRAY, "id")
        covered = sorted(
            pos for v in (1, 2, 3) for pos in index.lookup(v).tolist()
        )
        assert covered == list(range(len(ROWS)))

    def test_single_row_array(self):
        array = StructArray.from_rows(
            SCHEMA, [(7, "z", 0.0, datetime.date(2020, 1, 1))]
        )
        index = HashIndex(array, "id")
        assert index.lookup(7).tolist() == [0]
        assert len(index) == 1


class TestManagedKeyEncodings:
    """lookup() accepts the managed representation, not just the native."""

    def test_str_column_accepts_python_str(self):
        index = HashIndex(ARRAY, "grade")
        assert index.lookup("a").tolist() == [1, 2]
        assert index.lookup(b"a").tolist() == [1, 2]  # native bytes too
        assert len(index.lookup("zz")) == 0

    def test_date_column_accepts_date_objects(self):
        index = HashIndex(ARRAY, "day")
        assert index.lookup(datetime.date(2020, 1, 4)).tolist() == [0, 2]
        # and the native days-since-epoch encoding
        native = (datetime.date(2020, 1, 3) - datetime.date(1970, 1, 1)).days
        assert index.lookup(native).tolist() == [3]

    def test_float_column(self):
        index = HashIndex(ARRAY, "score")
        assert index.lookup(0.5).tolist() == [0, 3]

    def test_oversized_str_key_raises_schema_error(self):
        from repro.errors import SchemaError

        index = HashIndex(ARRAY, "grade")
        with pytest.raises(SchemaError):
            index.lookup("wider-than-four-bytes")


class TestStructArrayRegistration:
    def test_create_index_registers_and_memoizes(self):
        array = StructArray.from_rows(SCHEMA, ROWS)
        assert array.get_index("id") is None
        built = array.create_index("id")
        assert array.get_index("id") is built
        assert array.create_index("id") is built  # idempotent

    def test_index_affects_source_signature(self):
        # compiled code can depend on which indexes exist, so creating an
        # index must change the provider's cache key for the source
        from repro.query.provider import _source_signature

        plain = StructArray.from_rows(SCHEMA, ROWS)
        indexed = StructArray.from_rows(SCHEMA, ROWS)
        indexed.create_index("id")
        assert _source_signature([plain]) != _source_signature([indexed])

    def test_indexed_query_matches_scan(self):
        # end to end: the native engine consults the registered index and
        # must return exactly what the unindexed scan returns
        from repro import from_struct_array

        plain = StructArray.from_rows(SCHEMA, ROWS)
        indexed = StructArray.from_rows(SCHEMA, ROWS)
        indexed.create_index("id")

        def results(source):
            return (
                from_struct_array(source)
                .using("native")
                .where(lambda r: r.id == 3)
                .select(lambda r: r.score)
                .to_list()
            )

        assert results(indexed) == results(plain) == [0.5, 2.5]
