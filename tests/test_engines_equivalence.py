"""Cross-engine equivalence: every execution strategy, same results.

The correctness spine of the reproduction: each query shape runs on the
interpreted baseline (`linq`), the compiled-Python engine (§4), the native
engine (§5) and the hybrid variants (§6), and all must agree with a
straightforward hand-written Python computation.
"""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import P, new
from repro.errors import ExecutionError, UnsupportedQueryError
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray

SALE = Schema(
    [
        Field("region", "str", 12),
        Field("product", "str", 12),
        Field("qty", "int"),
        Field("price", "float"),
        Field("sold", "date"),
    ],
    name="Sale",
)

ROWS = [
    ("east", "apple", 5, 1.25, datetime.date(1995, 1, 10)),
    ("west", "pear", 2, 2.50, datetime.date(1995, 3, 5)),
    ("east", "pear", 7, 2.40, datetime.date(1996, 6, 1)),
    ("north", "apple", 1, 1.10, datetime.date(1996, 7, 9)),
    ("east", "apple", 3, 1.30, datetime.date(1997, 2, 14)),
    ("west", "plum", 9, 3.10, datetime.date(1997, 11, 30)),
    ("north", "pear", 4, 2.60, datetime.date(1998, 4, 22)),
    ("west", "apple", 6, 1.15, datetime.date(1998, 9, 18)),
]

OBJECT_ENGINES = ("linq", "compiled", "hybrid", "hybrid_buffered")
ALL_ENGINES = OBJECT_ENGINES + ("native",)


@pytest.fixture(scope="module")
def sales_array():
    return StructArray.from_rows(SALE, ROWS)


@pytest.fixture(scope="module")
def sales_objects(sales_array):
    return sales_array.to_objects()


@pytest.fixture()
def provider():
    return QueryProvider()


def make_query(engine, sales_objects, sales_array, provider):
    if engine == "native":
        return from_struct_array(sales_array).using(engine, provider)
    return from_iterable(sales_objects, token="obj:Sale").using(engine, provider)


@pytest.mark.parametrize("engine", ALL_ENGINES)
class TestFilterProject:
    def test_filter_by_string(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.where(lambda s: s.region == "east").select(lambda s: s.qty).to_list()
        assert result == [5, 7, 3]

    def test_filter_conjunction(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = (
            q.where(lambda s: (s.qty > 2) & (s.price < 2.0))
            .select(lambda s: s.product)
            .to_list()
        )
        assert result == ["apple", "apple", "apple"]

    def test_filter_disjunction_negation(
        self, engine, sales_objects, sales_array, provider
    ):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.where(lambda s: (s.region == "north") | ~(s.qty < 6)).count()
        assert result == 5

    def test_date_comparison(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        cutoff = datetime.date(1996, 12, 31)
        result = (
            q.where(lambda s: s.sold <= P("cutoff")).with_params(cutoff=cutoff).count()
        )
        assert result == 4

    def test_arithmetic_projection(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = (
            q.where(lambda s: s.region == "west")
            .select(lambda s: new(revenue=s.qty * s.price))
            .to_list()
        )
        assert [round(r.revenue, 2) for r in result] == [5.0, 27.9, 6.9]

    def test_string_method(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        assert q.where(lambda s: s.product.startswith("p")).count() == 4


@pytest.mark.parametrize("engine", ALL_ENGINES)
class TestAggregation:
    def test_scalar_aggregates(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        assert q.count() == 8
        assert q.sum(lambda s: s.qty) == 37
        assert q.min(lambda s: s.qty) == 1
        assert q.max(lambda s: s.qty) == 9
        assert q.average(lambda s: s.qty) == pytest.approx(37 / 8)

    def test_filtered_sum(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        total = q.where(lambda s: s.region == "east").sum(lambda s: s.qty * s.price)
        assert total == pytest.approx(5 * 1.25 + 7 * 2.40 + 3 * 1.30)

    def test_group_aggregate(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.group_by(
            lambda s: s.region,
            lambda g: new(
                region=g.key,
                total_qty=g.sum(lambda s: s.qty),
                n=g.count(),
                avg_price=g.avg(lambda s: s.price),
            ),
        ).to_list()
        by_region = {r.region: r for r in result}
        assert [r.region for r in result] == ["east", "west", "north"]  # first-seen
        assert by_region["east"].total_qty == 15
        assert by_region["east"].n == 3
        assert by_region["west"].avg_price == pytest.approx((2.5 + 3.1 + 1.15) / 3)

    def test_composite_group_key(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.group_by(
            lambda s: new(region=s.region, product=s.product),
            lambda g: new(region=g.key.region, product=g.key.product, n=g.count()),
        ).to_list()
        assert len(result) == 7  # east/apple occurs twice
        pairs = {(r.region, r.product): r.n for r in result}
        assert pairs[("east", "apple")] == 2

    def test_empty_min_raises(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        with pytest.raises(ExecutionError):
            q.where(lambda s: s.qty > 1000).min(lambda s: s.qty)

    def test_empty_sum_is_zero(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        assert q.where(lambda s: s.qty > 1000).sum(lambda s: s.qty) == 0


@pytest.mark.parametrize("engine", ("linq", "compiled", "native"))
class TestOrdering:
    def test_order_by(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.order_by(lambda s: s.qty).select(lambda s: s.qty).to_list()
        assert result == sorted(r[2] for r in ROWS)

    def test_order_by_desc(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.order_by_desc(lambda s: s.price).select(lambda s: s.price).to_list()
        assert result == sorted((r[3] for r in ROWS), reverse=True)

    def test_multi_key_sort(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = (
            q.order_by(lambda s: s.region)
            .then_by_desc(lambda s: s.qty)
            .select(lambda s: new(region=s.region, qty=s.qty))
            .to_list()
        )
        expected = sorted(
            [(r[0], r[2]) for r in ROWS], key=lambda t: (t[0], -t[1])
        )
        assert [(r.region, r.qty) for r in result] == expected

    def test_topn(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = (
            q.order_by_desc(lambda s: s.qty).take(3).select(lambda s: s.qty).to_list()
        )
        assert result == [9, 7, 6]

    def test_skip_take(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        ordered = q.order_by(lambda s: s.qty).skip(2).take(2)
        result = ordered.select(lambda s: s.qty).to_list()
        assert result == [3, 4]


@pytest.mark.parametrize("engine", ("linq", "compiled", "native"))
class TestDistinctConcat:
    def test_distinct(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        result = q.select(lambda s: s.region).distinct().to_list()
        assert result == ["east", "west", "north"]

    def test_sort_min_variant(self, engine, sales_objects, sales_array, provider):
        # hybrid_min handles sort queries over objects; compare against others
        if engine == "native":
            pytest.skip("min variant is an object-source strategy")
        expected = (
            make_query(engine, sales_objects, sales_array, provider)
            .order_by(lambda s: s.price)
            .select(lambda s: s.product)
            .to_list()
        )
        got = (
            from_iterable(sales_objects, token="obj:Sale")
            .using("hybrid_min", provider)
            .order_by(lambda s: s.price)
            .select(lambda s: s.product)
            .to_list()
        )
        assert got == expected


@pytest.mark.parametrize("engine", ALL_ENGINES)
class TestJoin:
    def _targets(self, engine, provider):
        region_rows = [("east", 1.0), ("west", 2.0), ("north", 3.0)]
        schema = Schema(
            [Field("name", "str", 12), Field("tax", "float")], name="Region"
        )
        arr = StructArray.from_rows(schema, region_rows)
        if engine == "native":
            return from_struct_array(arr).using(engine, provider)
        return from_iterable(arr.to_objects(), token="obj:Region").using(
            engine, provider
        )

    def test_join_with_aggregation(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        regions = self._targets(engine, provider)
        result = (
            q.join(
                regions,
                lambda s: s.region,
                lambda r: r.name,
                lambda s, r: new(region=s.region, taxed=s.qty * r.tax),
            )
            .group_by(
                lambda x: x.region,
                lambda g: new(region=g.key, total=g.sum(lambda x: x.taxed)),
            )
            .to_list()
        )
        by_region = {r.region: r.total for r in result}
        assert by_region["east"] == pytest.approx(15.0)
        assert by_region["west"] == pytest.approx(34.0)
        assert by_region["north"] == pytest.approx(15.0)

    def test_join_preserves_probe_order(
        self, engine, sales_objects, sales_array, provider
    ):
        q = make_query(engine, sales_objects, sales_array, provider)
        regions = self._targets(engine, provider)
        result = q.join(
            regions,
            lambda s: s.region,
            lambda r: r.name,
            lambda s, r: new(product=s.product, tax=r.tax),
        ).to_list()
        assert [r.product for r in result] == [r[1] for r in ROWS]


class TestEngineRestrictions:
    def test_native_requires_struct_arrays(self, sales_objects, provider):
        q = from_iterable(sales_objects, token="obj:Sale").using("native", provider)
        with pytest.raises(UnsupportedQueryError, match="StructArray"):
            q.where(lambda s: s.qty > 1).to_list()

    def test_native_rejects_whole_record_results(self, sales_array, provider):
        other = from_struct_array(sales_array)
        q = (
            from_struct_array(sales_array)
            .using("native", provider)
            .join(
                other,
                lambda a: a.region,
                lambda b: b.region,
                lambda a, b: new(a=a, b=b),
            )
        )
        with pytest.raises(UnsupportedQueryError, match="whole input records"):
            q.to_list()

    def test_min_variant_rejects_aggregation(self, sales_objects, provider):
        q = (
            from_iterable(sales_objects, token="obj:Sale")
            .using("hybrid_min", provider)
            .group_by(lambda s: s.region, lambda g: new(r=g.key, n=g.count()))
        )
        with pytest.raises(UnsupportedQueryError, match="Min staging"):
            q.to_list()

    def test_unknown_engine(self, sales_objects, provider):
        q = from_iterable(sales_objects).using("quantum", provider)
        with pytest.raises(UnsupportedQueryError, match="unknown engine"):
            q.to_list()


class TestDeferredExecution:
    @pytest.mark.parametrize("engine", ("linq", "compiled"))
    def test_source_mutations_visible_until_execution(self, engine, provider):
        from types import SimpleNamespace

        data = [SimpleNamespace(x=1)]
        q = from_iterable(data, token="obj:T").using(engine, provider).select(
            lambda s: s.x
        )
        data.append(SimpleNamespace(x=2))  # after query definition
        assert q.to_list() == [1, 2]

    @pytest.mark.parametrize("engine", ("linq", "compiled"))
    def test_first_pulls_lazily(self, engine, provider):
        from types import SimpleNamespace

        pulled = []

        class Spy:
            def __init__(self, items):
                self._items = items

            def __iter__(self):
                for item in self._items:
                    pulled.append(item.x)
                    yield item

        data = Spy([SimpleNamespace(x=i) for i in range(100)])
        q = from_iterable(data, token="obj:T").using(engine, provider)
        assert q.where(lambda s: s.x > 4).first().x == 5
        assert len(pulled) <= 6  # stopped as soon as the first match appeared


class TestTerminalAccessors:
    @pytest.mark.parametrize("engine", ("linq", "compiled"))
    def test_first_any_all_contains(self, engine, sales_objects, sales_array, provider):
        q = make_query(engine, sales_objects, sales_array, provider)
        assert q.first(lambda s: s.region == "west").product == "pear"
        assert q.first_or_default(lambda s: s.qty > 99) is None
        assert q.any(lambda s: s.qty == 9)
        assert not q.any(lambda s: s.qty == 99)
        assert q.all(lambda s: s.qty >= 1)
        assert not q.all(lambda s: s.qty > 1)
        assert q.select(lambda s: s.region).contains("north")

    def test_first_raises_when_empty(self, sales_objects, provider):
        q = from_iterable(sales_objects, token="obj:Sale").using("compiled", provider)
        with pytest.raises(ExecutionError, match="no matching element"):
            q.first(lambda s: s.qty > 99)


@st.composite
def _random_rows(draw):
    n = draw(st.integers(0, 60))
    regions = ["east", "west", "north", "south"]
    rows = []
    for _ in range(n):
        rows.append(
            (
                draw(st.sampled_from(regions)),
                draw(st.sampled_from(["apple", "pear", "plum"])),
                draw(st.integers(0, 100)),
                round(draw(st.floats(0.1, 99.0, allow_nan=False)), 2),
                datetime.date(1995, 1, 1)
                + datetime.timedelta(days=draw(st.integers(0, 1000))),
            )
        )
    return rows


class TestPropertyEquivalence:
    @given(_random_rows(), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_filter_sum_all_engines(self, rows, threshold):
        arr = StructArray.from_rows(SALE, rows)
        objs = arr.to_objects()
        expected = sum(r[2] for r in rows if r[2] > threshold)
        provider = QueryProvider()
        for engine in ("linq", "compiled", "hybrid", "hybrid_buffered"):
            q = from_iterable(objs, token="obj:Sale").using(engine, provider)
            assert q.where(lambda s: s.qty > P("t")).with_params(t=threshold).sum(
                lambda s: s.qty
            ) == expected, engine
        qn = from_struct_array(arr).using("native", provider)
        assert qn.where(lambda s: s.qty > P("t")).with_params(t=threshold).sum(
            lambda s: s.qty
        ) == expected

    @given(_random_rows())
    @settings(max_examples=25, deadline=None)
    def test_group_count_all_engines(self, rows):
        arr = StructArray.from_rows(SALE, rows)
        objs = arr.to_objects()
        expected = {}
        for r in rows:
            expected[r[0]] = expected.get(r[0], 0) + 1
        provider = QueryProvider()

        def run(q):
            result = q.group_by(
                lambda s: s.region, lambda g: new(region=g.key, n=g.count())
            ).to_list()
            return {r.region: r.n for r in result}

        for engine in ("linq", "compiled", "hybrid", "hybrid_buffered"):
            if engine.startswith("hybrid") and not rows:
                continue  # schema inference needs at least one element
            q = from_iterable(objs, token="obj:Sale").using(engine, provider)
            assert run(q) == expected, engine
        assert run(from_struct_array(arr).using("native", provider)) == expected

    @given(_random_rows(), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_topn_all_engines(self, rows, n):
        arr = StructArray.from_rows(SALE, rows)
        objs = arr.to_objects()
        expected = [
            r[3]
            for _, r in sorted(enumerate(rows), key=lambda t: (-t[1][3], t[0]))[:n]
        ]
        provider = QueryProvider()
        for engine in ("linq", "compiled"):
            q = from_iterable(objs, token="obj:Sale").using(engine, provider)
            ordered = q.order_by_desc(lambda s: s.price).take(n)
            got = ordered.select(lambda s: s.price).to_list()
            assert got == pytest.approx(expected), engine
        qn = from_struct_array(arr).using("native", provider)
        ordered = qn.order_by_desc(lambda s: s.price).take(n)
        got = ordered.select(lambda s: s.price).to_list()
        assert got == pytest.approx(expected)
