"""Property tests: the optimizer never changes results, on any engine.

Random query shapes over random datasets run twice — once with every
rewrite enabled, once with everything off — and on multiple engines; all
executions must produce identical results (modulo floating-point
summation order, handled by rounding).
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import P, new
from repro.plans.optimizer import OptimizeOptions
from repro.plans.translate import TranslateOptions
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray

ROW = Schema(
    [
        Field("k", "int"),
        Field("tag", "str", 4),
        Field("v", "float"),
    ],
    name="Row",
)

_ALL_ON = QueryProvider()
_ALL_OFF = QueryProvider(
    translate_options=TranslateOptions(fuse_aggregates=True, share_aggregates=False),
    optimize_options=OptimizeOptions(
        pushdown=False, reorder_predicates=False, fuse_filters=False, fuse_topn=False
    ),
)


@st.composite
def dataset(draw):
    n = draw(st.integers(1, 50))
    rows = [
        (
            draw(st.integers(0, 5)),
            draw(st.sampled_from(["aa", "bb", "cc"])),
            round(draw(st.floats(-100, 100, allow_nan=False)), 3),
        )
        for _ in range(n)
    ]
    return StructArray.from_rows(ROW, rows)


def _norm(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(value, 6) if isinstance(value, float) else value
                for value in tuple(row)
            )
        )
    return out


def _run_everywhere(build, array):
    """Build + run the query on three engines × two optimizer settings."""
    results = []
    objects = array.to_objects()
    for provider in (_ALL_ON, _ALL_OFF):
        for engine in ("linq", "compiled"):
            query = build(
                from_iterable(objects, token="prop:Row").using(engine, provider)
            )
            results.append(_norm(query))
        query = build(from_struct_array(array).using("native", provider))
        results.append(_norm(query))
    return results


class TestOptimizerEquivalence:
    @given(dataset(), st.integers(-5, 5), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_filter_sort_take(self, array, threshold, n):
        def build(q):
            return (
                q.where(lambda s: (s.k > P("t")) & (s.tag == "aa"))
                .order_by_desc(lambda s: s.v)
                .take(n)
                .select(lambda s: new(k=s.k, v=s.v))
                .with_params(t=threshold)
            )

        results = _run_everywhere(build, array)
        assert all(r == results[0] for r in results)

    @given(dataset())
    @settings(max_examples=30, deadline=None)
    def test_group_aggregate_with_averages(self, array):
        def build(q):
            return q.group_by(
                lambda s: s.k,
                lambda g: new(
                    k=g.key,
                    total=g.sum(lambda s: s.v),
                    mean=g.avg(lambda s: s.v),
                    mean2=g.avg(lambda s: s.v),
                    n=g.count(),
                ),
            )

        results = _run_everywhere(build, array)
        assert all(r == results[0] for r in results)

    @given(dataset(), dataset())
    @settings(max_examples=20, deadline=None)
    def test_join_with_post_filter(self, left_arr, right_arr):
        left_objects = left_arr.to_objects()
        right_objects = right_arr.to_objects()
        results = []
        for provider in (_ALL_ON, _ALL_OFF):
            for engine in ("linq", "compiled"):
                left = from_iterable(left_objects, token="prop:L").using(
                    engine, provider
                )
                right = from_iterable(right_objects, token="prop:R").using(
                    engine, provider
                )
                query = (
                    left.join(
                        right,
                        lambda a: a.k,
                        lambda b: b.k,
                        lambda a, b: new(a=a, b=b),
                    )
                    .where(lambda r: (r.a.v > 0) & (r.b.tag == "aa"))
                    .select(lambda r: new(k=r.a.k, av=r.a.v, bv=r.b.v))
                )
                results.append(_norm(query))
        assert all(r == results[0] for r in results)

    @given(dataset(), st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scalar_aggregates(self, array, threshold):
        values = []
        objects = array.to_objects()
        for provider in (_ALL_ON, _ALL_OFF):
            for engine in ("linq", "compiled"):
                q = from_iterable(objects, token="prop:S").using(engine, provider)
                values.append(
                    round(
                        q.where(lambda s: s.v > P("t"))
                        .with_params(t=threshold)
                        .sum(lambda s: s.v),
                        6,
                    )
                )
            q = from_struct_array(array).using("native", provider)
            values.append(
                round(
                    q.where(lambda s: s.v > P("t"))
                    .with_params(t=threshold)
                    .sum(lambda s: s.v),
                    6,
                )
            )
        assert all(v == pytest.approx(values[0], abs=1e-5) for v in values)

    @given(dataset())
    @settings(max_examples=20, deadline=None)
    def test_distinct_concat(self, array):
        objects = array.to_objects()

        def build(provider, engine):
            a = from_iterable(objects, token="prop:D").using(engine, provider)
            b = from_iterable(objects, token="prop:D2").using(engine, provider)
            return a.select(lambda s: s.k).concat(b.select(lambda s: s.k)).distinct()

        results = [
            build(provider, engine).to_list()
            for provider in (_ALL_ON, _ALL_OFF)
            for engine in ("linq", "compiled")
        ]
        assert all(r == results[0] for r in results)
