"""Unit tests for the §5 backend: generated vectorized NumPy code."""

import datetime

import pytest

from repro.codegen.native_backend import (
    NativeBackend,
    _preserves_rows,
    schema_for_sources,
)
from repro.errors import UnsupportedQueryError
from repro.expressions import Constant, Var, new, trace_lambda
from repro.plans import (
    AggregateSpec,
    Distinct,
    Filter,
    GroupAggregate,
    Limit,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
)
from repro.runtime.vectorized import RowView
from repro.storage import Field, Schema, StructArray

ITEM = Schema(
    [
        Field("k", "int"),
        Field("name", "str", 8),
        Field("v", "float"),
        Field("d", "date"),
    ],
    name="Item",
)


def make_array(rows):
    return StructArray.from_rows(ITEM, rows)


@pytest.fixture()
def items():
    return make_array(
        [
            (1, "aa", 1.5, datetime.date(1995, 1, 1)),
            (2, "bb", 2.5, datetime.date(1996, 1, 1)),
            (1, "cc", 3.5, datetime.date(1997, 1, 1)),
            (3, "ab", 4.5, datetime.date(1998, 1, 1)),
        ]
    )


def run(plan, *sources, params=None):
    compiled = NativeBackend().compile(plan, list(sources))
    result = compiled.execute(list(sources), params or {})
    return result if compiled.scalar else list(result)


SCAN = Scan(0, ITEM.token)


class TestSourceValidation:
    def test_rejects_object_lists(self):
        with pytest.raises(UnsupportedQueryError, match="StructArray"):
            schema_for_sources([[1, 2, 3]])

    def test_accepts_struct_arrays(self, items):
        (schema,) = schema_for_sources([items])
        assert schema is ITEM


class TestVectorizedExecution:
    def test_filter_on_string(self, items):
        plan = Filter(SCAN, trace_lambda(lambda s: s.name == "aa"))
        rows = run(plan, items)
        assert [r.k for r in rows] == [1]

    def test_filter_startswith(self, items):
        plan = Filter(SCAN, trace_lambda(lambda s: s.name.startswith("a")))
        assert len(run(plan, items)) == 2

    def test_date_param_coercion(self, items):
        from repro.expressions import Param, Binary, Member, Lambda

        predicate = Lambda(
            ("s",), Binary("le", Member(Var("s"), "d"), Param("cutoff"))
        )
        compiled = NativeBackend().compile(Filter(SCAN, predicate), [items])
        rows = list(
            compiled.execute([items], {"cutoff": datetime.date(1996, 6, 1)})
        )
        assert [r.k for r in rows] == [1, 2]

    def test_projection_single_value_decodes(self, items):
        plan = Project(SCAN, trace_lambda(lambda s: s.v + 1))
        values = run(plan, items)
        assert values == pytest.approx([2.5, 3.5, 4.5, 5.5])
        assert all(isinstance(v, float) for v in values)

    def test_projection_record_fields(self, items):
        plan = Project(SCAN, trace_lambda(lambda s: new(k=s.k, dbl=s.v * 2)))
        rows = run(plan, items)
        assert rows[0].k == 1 and rows[0].dbl == pytest.approx(3.0)

    def test_conditional_vectorizes_to_where(self, items):
        from repro import if_then_else

        plan = Project(
            SCAN, trace_lambda(lambda s: if_then_else(s.k == 1, s.v, 0.0))
        )
        compiled = NativeBackend().compile(plan, [items])
        assert "_np.where" in compiled.source_code
        assert list(compiled.execute([items], {})) == pytest.approx(
            [1.5, 0.0, 3.5, 0.0]
        )

    def test_group_aggregate(self, items):
        plan = GroupAggregate(
            SCAN,
            trace_lambda(lambda s: s.k),
            (
                AggregateSpec("sum", trace_lambda(lambda s: s.v)),
                AggregateSpec("count", None),
            ),
            new(k=Var("__key"), total=Var("__agg0"), n=Var("__agg1"))._node,
        )
        rows = run(plan, items)
        assert [(r.k, round(r.total, 1), r.n) for r in rows] == [
            (1, 5.0, 2), (2, 2.5, 1), (3, 4.5, 1),
        ]

    def test_scalar_aggregates(self, items):
        for kind, expected in (("sum", 12.0), ("min", 1.5), ("max", 4.5), ("avg", 3.0)):
            plan = ScalarAggregate(
                SCAN,
                (AggregateSpec(kind, trace_lambda(lambda s: s.v)),),
                Var("__agg0"),
            )
            assert run(plan, items) == pytest.approx(expected), kind

    def test_scalar_count_needs_no_columns(self, items):
        plan = ScalarAggregate(SCAN, (AggregateSpec("count", None),), Var("__agg0"))
        compiled = NativeBackend().compile(plan, [items])
        assert compiled.execute([items], {}) == 4

    def test_limit_count_only_path(self, items):
        plan = ScalarAggregate(
            Limit(SCAN, count=Constant(3)),
            (AggregateSpec("count", None),),
            Var("__agg0"),
        )
        assert run(plan, items) == 3

    def test_distinct_uses_all_columns(self, items):
        plan = Distinct(Project(SCAN, trace_lambda(lambda s: new(k=s.k))))
        rows = run(plan, items)
        assert [r.k for r in rows] == [1, 2, 3]


class TestNativeRestrictions:
    def test_nested_member_access_rejected(self, items):
        plan = Filter(SCAN, trace_lambda(lambda s: s.name.inner == 1))
        with pytest.raises(UnsupportedQueryError, match="nested member access"):
            NativeBackend().compile(plan, [items])

    def test_whole_record_value_rejected(self, items):
        plan = Project(SCAN, trace_lambda(lambda s: s))
        with pytest.raises(UnsupportedQueryError, match="whole records|no references"):
            NativeBackend().compile(plan, [items])

    def test_flatmap_rejected(self, items):
        from repro.plans import FlatMap

        plan = FlatMap(SCAN, trace_lambda(lambda s: s.k), None)
        with pytest.raises(UnsupportedQueryError, match="outside the native fragment"):
            NativeBackend().compile(plan, [items])

    def test_groupby_without_aggregation_rejected(self, items):
        from repro.plans import GroupBy

        plan = GroupBy(SCAN, trace_lambda(lambda s: s.k))
        with pytest.raises(UnsupportedQueryError):
            NativeBackend().compile(plan, [items])


class TestPointerReturnPath:
    def test_row_preserving_plans_detected(self):
        assert _preserves_rows(SCAN)
        assert _preserves_rows(Filter(SCAN, trace_lambda(lambda s: s.k > 1)))
        assert _preserves_rows(
            Sort(SCAN, (trace_lambda(lambda s: s.v),), (False,))
        )
        assert not _preserves_rows(Project(SCAN, trace_lambda(lambda s: s.k)))
        assert not _preserves_rows(
            GroupAggregate(
                SCAN,
                trace_lambda(lambda s: s.k),
                (AggregateSpec("count", None),),
                Var("__agg0"),
            )
        )

    def test_sort_returns_row_views(self, items):
        plan = Sort(SCAN, (trace_lambda(lambda s: s.v),), (True,))
        rows = run(plan, items)
        assert isinstance(rows[0], RowView)
        assert [r.k for r in rows] == [3, 1, 2, 1]
        # views decode every field kind correctly
        assert rows[0].name == "ab"
        assert rows[0].d == datetime.date(1998, 1, 1)
        assert rows[0].v == pytest.approx(4.5)

    def test_row_view_iteration_and_equality(self, items):
        plan = Filter(SCAN, trace_lambda(lambda s: s.k == 2))
        (row,) = run(plan, items)
        assert tuple(row) == (2, "bb", 2.5, datetime.date(1996, 1, 1))
        assert row == (2, "bb", 2.5, datetime.date(1996, 1, 1))
        assert "RowView" in repr(row)

    def test_row_view_unknown_attribute(self, items):
        (row,) = run(Filter(SCAN, trace_lambda(lambda s: s.k == 2)), items)
        with pytest.raises(AttributeError):
            row.nonexistent

    def test_projected_results_stay_records(self, items):
        plan = Project(SCAN, trace_lambda(lambda s: new(k=s.k)))
        rows = run(plan, items)
        assert not isinstance(rows[0], RowView)
        assert rows[0]._fields == ("k",)


class TestGeneratedNativeSource:
    def test_only_vectorized_operations(self, items):
        plan = Filter(SCAN, trace_lambda(lambda s: (s.k > 1) & (s.v < 4.0)))
        compiled = NativeBackend().compile(plan, [items])
        # elementwise boolean ops, not python `and`
        assert " & " in compiled.source_code
        assert " and " not in compiled.source_code
        # no per-element loop over the data
        assert "for " not in compiled.source_code.replace("for _", "")

    def test_implicit_projection_reads_only_needed_columns(self, items):
        plan = ScalarAggregate(
            Filter(SCAN, trace_lambda(lambda s: s.k == 1)),
            (AggregateSpec("sum", trace_lambda(lambda s: s.v)),),
            Var("__agg0"),
        )
        compiled = NativeBackend().compile(plan, [items])
        assert "'k'" in compiled.source_code
        assert "'v'" in compiled.source_code
        assert "'name'" not in compiled.source_code  # never touched
        assert "'d'" not in compiled.source_code
