"""Delta-aware result recycling: incremental ≡ full re-execution.

The tentpole invariant of the versioned-storage PR: for any cached query
over a versioned :class:`StructArray` whose source only *grew*,

    (run; append; delta-recycle)  ≡  (append; full re-run from cold)

— on every engine, sequential and parallel, for empty deltas, delta-only
sources (empty base), and shapes that must fall back to full re-execution
(left/set-op builds, impure lambdas).  A seeded corpus checks ≥50 query
shapes; targeted tests pin the delta path actually engaging (morsel span
counts over only the ``[old, new)`` window) and the fallback reasons.
"""

import random

import pytest

from repro import new
from repro.errors import ExecutionError, UnsupportedQueryError
from repro.observability import METRICS, TRACER
from repro.query import QueryProvider, RecyclingProvider, from_iterable
from repro.storage import Field, Schema, StructArray

T1 = Schema(
    [
        Field("rid", "int"),
        Field("g", "int"),
        Field("v", "float"),
        Field("s", "str", 4),
    ],
    name="DeltaA",
)
T2 = Schema(
    [Field("k", "int"), Field("w", "float"), Field("t", "str", 4)],
    name="DeltaB",
)

_VOCAB = ["aa", "bb", "cc", "dd"]

ENGINES = ("compiled", "native", "hybrid", "hybrid_buffered")
WORKER_CONFIGS = (None, 2)

#: shared providers so the corpus reuses compiled artifacts the way the
#: main differential fuzz does; recycler entries key on source identity,
#: and each case builds fresh arrays, so cases never collide
REC_PROVIDER = RecyclingProvider(max_results=512)
COLD_PROVIDER = QueryProvider()


def _exact_float(rng: random.Random) -> float:
    # multiples of 0.25: every sum is exactly representable, so merge
    # order cannot perturb float results (same convention as the main
    # differential fuzz)
    return rng.randrange(-200, 200) * 0.25


def _rows_a(rng, n):
    return [
        (rng.randrange(10_000), rng.randrange(6), _exact_float(rng), rng.choice(_VOCAB))
        for _ in range(n)
    ]


def _rows_b(rng, n):
    return [
        (rng.randrange(9), _exact_float(rng), rng.choice(_VOCAB)) for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Query shapes over one mutable outer source (+ one static inner source).
# All randomness is drawn inside shape(rng) so the same structure applies
# to the incremental and the cold runs.
# ---------------------------------------------------------------------------


def _shape_filter_select(rng):
    c = rng.randrange(-1, 7)
    x = _exact_float(rng)
    out_mode = rng.randrange(3)

    def apply(outer, inner):
        q = outer.where(lambda r: (r.g > c) | (r.v <= x))
        if out_mode == 0:
            return q, None
        if out_mode == 1:
            return q.select(lambda r: new(i=r.rid, y=r.v + r.v)), None
        return q.select(lambda r: r.v), None

    return apply


def _shape_group(rng):
    key_on_str = rng.randrange(2)
    c = rng.randrange(0, 6)

    def apply(outer, inner):
        key = (lambda r: r.s) if key_on_str else (lambda r: r.g)
        return (
            outer.where(lambda r: r.g != c).group_by(
                key,
                lambda grp: new(
                    k=grp.key,
                    n=grp.count(),
                    t=grp.sum(lambda r: r.v),
                    a=grp.avg(lambda r: r.v),
                ),
            ),
            None,
        )

    return apply


def _shape_scalar(rng):
    terminal = rng.choice(["count", "sum", "min", "max", "average"])
    c = rng.randrange(-1, 8)

    def apply(outer, inner):
        q = outer.where(lambda r: r.g < c)
        selector = None if terminal == "count" else (lambda r: r.v)
        return q, (terminal, selector)

    return apply


def _shape_sort_tail(rng):
    x = _exact_float(rng)
    n = rng.randrange(1, 30)
    tail = rng.randrange(3)

    def apply(outer, inner):
        q = outer.where(lambda r: r.v > x).select(
            lambda r: new(g=r.g, v=r.v, i=r.rid)
        )
        q = q.order_by(lambda p: p.g).then_by(lambda p: p.i)
        if tail == 1:
            q = q.take(n)  # top-n tail
        elif tail == 2:
            q = q.skip(n // 2).take(n)
        return q, None

    return apply


def _shape_distinct_tail(rng):
    pick = rng.randrange(2)

    def apply(outer, inner):
        if pick:
            return outer.select(lambda r: new(g=r.g, s=r.s)).distinct(), None
        return outer.select(lambda r: r.g).distinct(), None

    return apply


def _shape_inner_join(rng):
    c = rng.randrange(0, 6)

    def apply(outer, inner):
        return (
            outer.where(lambda r: r.g >= c).join(
                inner,
                lambda r: r.g,
                lambda b: b.k,
                lambda r, b: new(i=r.rid, v=r.v, w=b.w),
            ),
            None,
        )

    return apply


def _shape_left_join(rng):
    # left outer builds have no stable delta re-apply: must fall back
    sentinel = rng.randrange(-9, -1)

    def apply(outer, inner):
        return (
            outer.left_outer_join(
                inner,
                lambda r: r.g,
                lambda b: b.k,
                lambda r, b: new(i=r.rid, w=b.w, t=b.t),
                default={"k": sentinel, "w": -0.25, "t": "zz"},
            ),
            None,
        )

    return apply


def _shape_setop(rng):
    # set-operation builds have no stable delta re-apply: must fall back
    op = rng.randrange(3)
    c = rng.randrange(0, 6)

    def apply(outer, inner):
        left = outer.where(lambda r: r.g >= c).select(lambda r: new(a=r.g, s=r.s))
        right = inner.select(lambda b: new(a=b.k, s=b.t))
        if op == 0:
            return left.intersect(right), None
        if op == 1:
            return left.except_(right), None
        return left.union(right), None

    return apply


SHAPES = (
    _shape_filter_select,
    _shape_group,
    _shape_scalar,
    _shape_sort_tail,
    _shape_distinct_tail,
    _shape_inner_join,
    _shape_left_join,
    _shape_setop,
)

#: delta regimes cycled deterministically: normal growth, empty delta
#: (version unchanged — must hit the cache), and delta-only (empty base)
_DELTA_MODES = ("grow", "empty", "delta_only")

SEEDS = range(8)
CASES_PER_SEED = 8  # 8 × 8 = 64 ≥ the ~50-shape floor

_COVERAGE = []


def _run(query, terminal, workers=None):
    if workers is not None:
        query = query.in_parallel(workers)
    try:
        if terminal is None:
            return ("rows", list(query))
        name, selector = terminal
        args = [selector] if selector is not None else []
        return ("scalar", getattr(query, name)(*args))
    except UnsupportedQueryError:
        return ("unsupported", None)
    except ExecutionError as exc:
        return ("error", str(exc))


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_recycle_equals_full_rerun(seed):
    rng = random.Random(7000 + seed)
    for case in range(CASES_PER_SEED):
        shape = SHAPES[(seed * CASES_PER_SEED + case) % len(SHAPES)]
        mode = _DELTA_MODES[(seed + case) % len(_DELTA_MODES)]
        apply = shape(rng)
        base = _rows_a(rng, 0 if mode == "delta_only" else rng.randrange(40, 120))
        delta = _rows_a(rng, 0 if mode == "empty" else rng.randrange(1, 40))
        inner_rows = _rows_b(rng, 50)
        inner_static = StructArray.from_rows(T2, inner_rows)

        for engine in ENGINES:
            for workers in WORKER_CONFIGS:
                # incremental: run, append, re-run through the recycler
                arr = StructArray.from_rows(T1, base)
                outer = from_iterable(arr).using(engine, REC_PROVIDER)
                inner = from_iterable(inner_static).using(engine, REC_PROVIDER)
                query, term = apply(outer, inner)
                warm = _run(query, term, workers)
                if warm[0] == "unsupported":
                    continue
                arr.append_rows(delta)
                incremental = _run(query, term, workers)

                # cold: the already-grown source, full re-execution
                cold_arr = StructArray.from_rows(T1, base + delta)
                cold_outer = from_iterable(cold_arr).using(engine, COLD_PROVIDER)
                cold_inner = from_iterable(inner_static).using(
                    engine, COLD_PROVIDER
                )
                cold_query, cold_term = apply(cold_outer, cold_inner)
                cold = _run(cold_query, cold_term, workers)

                assert incremental == cold, (
                    f"seed={seed} case={case} shape={shape.__name__} "
                    f"mode={mode} engine={engine} workers={workers}: "
                    f"incremental {incremental!r} != cold {cold!r}"
                )
        _COVERAGE.append((seed, shape.__name__, mode))


def test_corpus_size():
    """Runs after the corpus (file order): coverage floor + families."""
    assert len(_COVERAGE) >= 50, len(_COVERAGE)
    assert {name for _, name, _ in _COVERAGE} == {s.__name__ for s in SHAPES}
    assert {mode for _, _, mode in _COVERAGE} == set(_DELTA_MODES)


# ---------------------------------------------------------------------------
# The delta path actually engages: acceptance assertion via span counts
# ---------------------------------------------------------------------------


def _spans_named(spans, name):
    return [r for r in spans if r.name == name]


@pytest.mark.parametrize("engine", ENGINES)
def test_cached_aggregation_runs_only_delta_morsels(engine):
    """ISSUE acceptance: 100k-row source, append ≤5%, re-execution of a
    cached aggregation touches only the delta morsel range."""
    rng = random.Random(31337)
    total, appended, morsel = 100_000, 5_000, 10_000
    arr = StructArray.from_rows(T1, _rows_a(rng, total))
    provider = RecyclingProvider()
    query = (
        from_iterable(arr)
        .using(engine, provider)
        .where(lambda r: r.g >= 0)
        .group_by(
            lambda r: r.g,
            lambda grp: new(k=grp.key, t=grp.sum(lambda r: r.v), n=grp.count()),
        )
        .in_parallel(2, morsel)
    )
    with TRACER.capture() as cold_spans:
        first = query.to_list()
    # the cold run covered the whole source in kernels
    assert len(_spans_named(cold_spans, "parallel.morsel")) == total // morsel

    delta_before = METRICS.counter("recycler.delta_hits").value
    arr.append_rows(_rows_a(rng, appended))
    with TRACER.capture() as warm_spans:
        second = query.to_list()
    morsels = _spans_named(warm_spans, "parallel.morsel")
    # ... the re-execution ran kernels over only [100k, 105k): one morsel
    assert len(morsels) == 1
    assert morsels[0].attrs["start"] == total
    assert morsels[0].attrs["stop"] == total + appended
    assert provider.recycler_stats.delta_hits == 1
    assert METRICS.counter("recycler.delta_hits").value == delta_before + 1

    # identical to a cold full run over the grown source
    cold = (
        from_iterable(arr)
        .using(engine, QueryProvider())
        .where(lambda r: r.g >= 0)
        .group_by(
            lambda r: r.g,
            lambda grp: new(k=grp.key, t=grp.sum(lambda r: r.v), n=grp.count()),
        )
        .to_list()
    )
    assert second == cold
    assert first != second  # the delta actually changed the aggregates


# ---------------------------------------------------------------------------
# Fallback classification: reasons surface, wrong answers never
# ---------------------------------------------------------------------------


def _recycle_modes(spans):
    return [
        (r.attrs.get("mode"), r.attrs.get("reason"))
        for r in _spans_named(spans, "query.recycle")
    ]


def test_left_join_falls_back_to_full_rerun():
    rng = random.Random(5)
    arr = StructArray.from_rows(T1, _rows_a(rng, 60))
    inner = StructArray.from_rows(T2, _rows_b(rng, 20))
    provider = RecyclingProvider()
    query = (
        from_iterable(arr)
        .using("compiled", provider)
        .left_outer_join(
            from_iterable(inner).using("compiled", provider),
            lambda r: r.g,
            lambda b: b.k,
            lambda r, b: new(i=r.rid, w=b.w),
            default={"k": -1, "w": -0.25, "t": "zz"},
        )
    )
    query.to_list()
    full_before = provider.recycler_stats.full_reruns
    arr.append_rows(_rows_a(rng, 6))
    with TRACER.capture() as spans:
        query.to_list()
    assert provider.recycler_stats.full_reruns == full_before + 1
    modes = _recycle_modes(spans)
    assert len(modes) == 1
    mode, reason = modes[0]
    assert mode == "full"
    assert reason  # the classification reason is surfaced

    analysis = query.explain_analyze()
    assert analysis.recycle.startswith("hit")  # unchanged source: hit


def test_escape_hatch_disables_delta(monkeypatch):
    monkeypatch.setenv("REPRO_DELTA_RECYCLE", "0")
    rng = random.Random(6)
    arr = StructArray.from_rows(T1, _rows_a(rng, 60))
    provider = RecyclingProvider()
    query = (
        from_iterable(arr)
        .using("compiled", provider)
        .where(lambda r: r.g >= 0)
        .select(lambda r: r.v)
    )
    query.to_list()
    arr.append_rows(_rows_a(rng, 6))
    with TRACER.capture() as spans:
        rows = query.to_list()
    assert provider.recycler_stats.delta_hits == 0
    assert provider.recycler_stats.full_reruns == 1
    (entry,) = _recycle_modes(spans)
    assert entry[0] == "full"
    assert "REPRO_DELTA_RECYCLE" in entry[1]
    assert rows == [r.v for r in arr]


def test_non_growth_change_falls_back():
    """A second versioned source changing (not the driver) is not a pure
    delta: full re-execution, never a wrong merge."""
    rng = random.Random(7)
    arr = StructArray.from_rows(T1, _rows_a(rng, 60))
    inner = StructArray.from_rows(T2, _rows_b(rng, 20))
    provider = RecyclingProvider()
    query = (
        from_iterable(arr)
        .using("compiled", provider)
        .join(
            from_iterable(inner).using("compiled", provider),
            lambda r: r.g,
            lambda b: b.k,
            lambda r, b: new(i=r.rid, w=b.w),
        )
    )
    query.to_list()
    inner.append_rows(_rows_b(rng, 5))  # the build side grew
    with TRACER.capture() as spans:
        warm = query.to_list()
    cold = (
        from_iterable(arr)
        .using("compiled", QueryProvider())
        .join(
            from_iterable(inner).using("compiled", QueryProvider()),
            lambda r: r.g,
            lambda b: b.k,
            lambda r, b: new(i=r.rid, w=b.w),
        )
        .to_list()
    )
    assert warm == cold
    modes = _recycle_modes(spans)
    assert modes and modes[0][0] == "full"


def test_explain_analyze_shows_delta():
    rng = random.Random(8)
    arr = StructArray.from_rows(T1, _rows_a(rng, 60))
    provider = RecyclingProvider()
    query = (
        from_iterable(arr)
        .using("compiled", provider)
        .where(lambda r: r.g >= 0)
        .select(lambda r: r.v)
    )
    assert query.explain_analyze().recycle == "miss"
    assert query.explain_analyze().recycle == "hit"
    arr.append_rows(_rows_a(rng, 6))
    analysis = query.explain_analyze()
    assert analysis.recycle == "delta"
    assert "recycle: delta" in str(analysis)


def test_plain_growth_compacts_superseded_entries():
    """A plain collection keys by (identity, length), so growth lands on
    a new key; storing the new entry must evict the old-length one (its
    rows and partial state can never hit again) instead of letting it
    squat in the LRU."""
    rng = random.Random(9)
    arr = StructArray.from_rows(T1, _rows_a(rng, 40))
    # a plain list, not a StructArray: the query's source IS this object,
    # so in-place growth changes its length (and hence its cache key)
    items = list(arr.to_objects())
    provider = RecyclingProvider()
    query = (
        from_iterable(items)
        .using("compiled", provider)
        .where(lambda r: r.g != 1)
        .select(lambda r: new(i=r.rid, v=r.v))
    )
    query.to_list()
    assert provider.cached_results == 1
    before = provider.recycler_stats.compactions
    metric_before = METRICS.counter("recycler.compactions").value
    items.extend(list(arr.to_objects())[:7])  # same identity, new length
    second = query.to_list()
    assert provider.cached_results == 1  # superseded entry compacted away
    assert provider.recycler_stats.compactions == before + 1
    assert METRICS.counter("recycler.compactions").value == metric_before + 1
    # the surviving entry still serves hits
    hits = provider.recycler_stats.hits
    assert query.to_list() == second
    assert provider.recycler_stats.hits == hits + 1
    # distinct queries over the same source are untouched by compaction
    other = (
        from_iterable(items)
        .using("compiled", provider)
        .select(lambda r: r.rid)
    )
    other.to_list()
    assert provider.cached_results == 2
