"""CacheStats accounting: hits, misses, and evictions for both entry kinds.

``store`` always counted its evictions; ``store_analysis`` historically did
not, so a cache holding analyses under-reported evictions.  These tests pin
the corrected accounting for compiled entries, analysis entries, and the
two combined, at both the unit (QueryCache) and provider level.

Also pins the per-key compile-lock table: locks exist only while a
compilation is in flight, so the table stays bounded by concurrency — it
historically grew by one entry per distinct query, forever.
"""

import threading

from repro.query import QueryCache, QueryProvider, from_iterable
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema([Field("x", "int"), Field("y", "float")], name="Acct")
OBJECTS = StructArray.from_rows(
    SCHEMA, [(i, i * 0.5) for i in range(20)]
).to_objects()


class _FakeCompiled:
    """Stand-in artifact; the cache never inspects what it stores."""


class TestCompiledEntryAccounting:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.find("k") is None
        cache.store("k", _FakeCompiled())
        assert cache.find("k") is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_eviction_counted_per_entry(self):
        cache = QueryCache(max_entries=2)
        for i in range(5):
            cache.store(i, _FakeCompiled())
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_lru_refresh_protects_from_eviction(self):
        cache = QueryCache(max_entries=2)
        cache.store("a", _FakeCompiled())
        cache.store("b", _FakeCompiled())
        cache.find("a")  # refresh: b is now the LRU victim
        cache.store("c", _FakeCompiled())
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1


class TestAnalysisEntryAccounting:
    def test_analysis_miss_then_hit(self):
        cache = QueryCache()
        assert cache.find_analysis("k") is None
        cache.store_analysis("k", object())
        assert cache.find_analysis("k") is not None
        assert cache.stats.analysis_misses == 1
        assert cache.stats.analysis_hits == 1

    def test_store_analysis_counts_evictions(self):
        # the historical bug: analysis evictions silently dropped entries
        cache = QueryCache(max_entries=2)
        for i in range(5):
            cache.store_analysis(i, object())
        assert cache.stats.evictions == 3

    def test_both_kinds_share_the_eviction_counter(self):
        cache = QueryCache(max_entries=1)
        cache.store("a", _FakeCompiled())
        cache.store("b", _FakeCompiled())  # evicts compiled a
        cache.store_analysis("x", object())
        cache.store_analysis("y", object())  # evicts analysis x
        assert cache.stats.evictions == 2

    def test_budgets_are_independent(self):
        # one compiled entry and one analysis entry coexist at max=1:
        # the kinds are keyed separately and evict within their own store
        cache = QueryCache(max_entries=1)
        cache.store("a", _FakeCompiled())
        cache.store_analysis("a", object())
        assert cache.stats.evictions == 0
        assert cache.find("a") is not None
        assert cache.find_analysis("a") is not None


class TestStatsLifecycle:
    def test_hit_rate(self):
        cache = QueryCache()
        cache.find("missing")
        cache.store("k", _FakeCompiled())
        cache.find("k")
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert QueryCache().stats.hit_rate == 0.0

    def test_clear_resets_everything(self):
        cache = QueryCache(max_entries=1)
        cache.store("a", _FakeCompiled())
        cache.store("b", _FakeCompiled())
        cache.store_analysis("c", object())
        cache.find("b")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats
        assert (
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.analysis_hits,
            stats.analysis_misses,
        ) == (0, 0, 0, 0, 0)


class TestProviderLevelAccounting:
    def test_linq_reuses_cached_analysis(self):
        provider = QueryProvider()
        q = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("linq", provider)
            .where(lambda r: r.x > 3)
        )
        list(q)
        list(q)
        stats = provider.cache.stats
        assert stats.analysis_misses == 1
        assert stats.analysis_hits == 1
        assert stats.misses == 0  # linq never touches the compiled store

    def test_compiled_engine_counts_both_kinds(self):
        # pinned sequential: a parallel-artifact build would consult the
        # analysis cache again and perturb the exact counts below
        provider = QueryProvider()
        q = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(lambda r: r.x > 3)
            .in_parallel(1)
        )
        list(q)  # compiled miss + analysis miss (inside _compile)
        list(q)  # compiled hit; analysis not consulted again
        stats = provider.cache.stats
        assert (stats.misses, stats.hits) == (1, 1)
        assert (stats.analysis_misses, stats.analysis_hits) == (1, 0)

    def test_analysis_shared_across_engines(self):
        provider = QueryProvider()

        def q(engine):
            return (
                from_iterable(OBJECTS, schema=SCHEMA)
                .using(engine, provider)
                .where(lambda r: r.x > 3)
                .select(lambda r: r.y)
                .in_parallel(1)  # exact counts need the sequential path
            )

        list(q("compiled"))
        list(q("hybrid"))  # second engine: new compilation, cached analysis
        stats = provider.cache.stats
        assert stats.misses == 2
        assert stats.analysis_misses == 1
        assert stats.analysis_hits == 1

    def test_key_lock_table_pruned_after_each_compilation(self):
        # the regression: one lock per distinct query key, never removed —
        # a provider fed an endless stream of fresh shapes leaked locks
        provider = QueryProvider()
        base = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .in_parallel(1)  # exact counts need the sequential path
        )
        shapes = [
            lambda q: q.where(lambda r: r.x > 3),
            lambda q: q.where(lambda r: r.x < 3),
            lambda q: q.where(lambda r: r.x >= 3),
            lambda q: q.select(lambda r: r.y),
            lambda q: q.where(lambda r: r.x > 3).select(lambda r: r.y),
            lambda q: q.order_by(lambda r: r.y),
        ]
        for shape in shapes:
            shape(base).to_list()
        assert provider.cache.stats.misses == len(shapes)
        assert provider._key_locks == {}

    def test_key_lock_pruning_keeps_compilation_exactly_once(self):
        # ten threads race the same cold query; pruning must not break the
        # serialize-per-key guarantee (one compile, everyone else hits)
        provider = QueryProvider()
        query = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .where(lambda r: r.x > 3)
            .in_parallel(1)
        )
        barrier = threading.Barrier(10)
        errors = []

        def run():
            try:
                barrier.wait()
                assert query.to_list()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert provider.cache.stats.misses == 1
        assert provider.cache.stats.hits == 9
        assert provider._key_locks == {}

    def test_eviction_listener_sees_victim_keys(self):
        cache = QueryCache(max_entries=2)
        victims = []
        cache.add_eviction_listener(victims.append)
        cache.store("a", _FakeCompiled())
        cache.store("b", _FakeCompiled())
        cache.store("b", _FakeCompiled())  # overwrite: no eviction
        assert victims == []
        cache.store("c", _FakeCompiled())  # evicts a
        cache.store("d", _FakeCompiled())  # evicts b
        assert victims == ["a", "b"]

    def test_discard_analysis_counts_only_real_removals(self):
        cache = QueryCache()
        cache.store_analysis("k", object())
        assert cache.discard_analysis("k") is True
        assert cache.discard_analysis("k") is False
        assert cache.discard_analysis("never-stored") is False
        assert cache.stats.evictions == 1
        assert cache.find_analysis("k") is None

    def test_provider_eviction_covers_analyses(self):
        provider = QueryProvider(cache=QueryCache(max_entries=1))
        base = (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using("compiled", provider)
            .in_parallel(1)  # exact counts need the sequential path
        )
        base.where(lambda r: r.x > 3).to_list()
        base.select(lambda r: r.y).to_list()
        base.where(lambda r: r.x < 2).to_list()
        stats = provider.cache.stats
        # compiled entries: 3 stored, 1 resident; analyses: 3 stored,
        # 1 resident — four total evictions, all counted
        assert len(provider.cache) == 1
        assert stats.evictions == 4


class TestEvictionCoherence:
    """Evicting a compiled entry must drop the provider's side state too.

    The regression: ``QueryProvider._ir_cache`` (and the analysis store)
    were keyed per canonical query but never evicted when the compiled
    entry left the ``QueryCache`` — a bounded compiled cache anchored
    unbounded engine-independent state for queries that could never hit
    again.
    """

    def _base(self, provider, engine="compiled"):
        return (
            from_iterable(OBJECTS, schema=SCHEMA)
            .using(engine, provider)
            .in_parallel(1)
        )

    def test_ir_cache_bounded_by_compiled_budget(self):
        provider = QueryProvider(cache=QueryCache(max_entries=2))
        shapes = [
            lambda q: q.where(lambda r: r.x > 3),
            lambda q: q.where(lambda r: r.x < 3),
            lambda q: q.select(lambda r: r.y),
            lambda q: q.where(lambda r: r.x >= 3).select(lambda r: r.y),
            lambda q: q.order_by(lambda r: r.y),
        ]
        for shape in shapes:
            shape(self._base(provider)).to_list()
        # one engine per shape: side state tracks the two resident entries
        assert len(provider.cache) == 2
        assert len(provider._ir_cache) == 2
        assert len(provider._associations) == 2
        assert len(provider._shared_refs) == 4  # 2 analyses + 2 IRs

    def test_evicted_shape_loses_its_ir(self):
        provider = QueryProvider(cache=QueryCache(max_entries=1))
        self._base(provider).where(lambda r: r.x > 3).to_list()
        first_ir_keys = set(provider._ir_cache)
        assert len(first_ir_keys) == 1
        self._base(provider).select(lambda r: r.y).to_list()
        assert len(provider._ir_cache) == 1
        assert not (first_ir_keys & set(provider._ir_cache))

    def test_shared_analysis_survives_until_last_engine_evicts(self):
        # compiled and hybrid entries for one query share a single
        # analysis and IR (both engine-independent); evicting one engine's
        # artifact must not orphan the other's side state
        provider = QueryProvider(cache=QueryCache(max_entries=2))

        def same_query(engine):
            # a shape the hybrid engine accepts (flat field access)
            return (
                self._base(provider, engine)
                .where(lambda r: r.x > 3)
                .select(lambda r: r.y)
            )

        same_query("compiled").to_list()
        same_query("hybrid").to_list()
        shared_ir_keys = set(provider._ir_cache)
        assert len(shared_ir_keys) == 1
        assert len(provider._associations) == 2

        # evicts the compiled-engine entry (LRU); hybrid still refs the IR
        self._base(provider).select(lambda r: r.y).to_list()
        assert shared_ir_keys <= set(provider._ir_cache)
        assert len(provider._associations) == 2

        # evicts the hybrid entry: the last reference goes, and so does
        # the shared IR
        self._base(provider).order_by(lambda r: r.y).to_list()
        assert not (shared_ir_keys & set(provider._ir_cache))
        # refcounts drained for everything no longer resident
        assert len(provider._associations) == len(provider.cache) == 2

    def test_recompile_after_eviction_restores_side_state(self):
        provider = QueryProvider(cache=QueryCache(max_entries=1))
        query = self._base(provider).where(lambda r: r.x > 3)
        query.to_list()
        self._base(provider).select(lambda r: r.y).to_list()  # evicts it
        query.to_list()  # recompile: associations re-registered cleanly
        assert len(provider._ir_cache) == 1
        assert len(provider._associations) == 1
        assert len(provider._shared_refs) == 2
        assert provider.cache.stats.misses == 3
