"""Tests for constant folding, auto-parameterization and cache keys."""

from repro.expressions import (
    Binary,
    Constant,
    Lambda,
    Member,
    Param,
    QueryOp,
    SourceExpr,
    Var,
    cache_key,
    canonicalize,
    fold_constants,
    parameterize,
    trace_lambda,
)


def where_query(predicate_fn, token="City"):
    return QueryOp("where", SourceExpr(0, token), (trace_lambda(predicate_fn),))


class TestConstantFolding:
    def test_folds_pure_arithmetic(self):
        expr = Binary("add", Constant(1), Binary("mul", Constant(2), Constant(3)))
        assert fold_constants(expr) == Constant(7)

    def test_keeps_variable_dependent_parts(self):
        expr = Binary("add", Var("x"), Binary("mul", Constant(2), Constant(3)))
        folded = fold_constants(expr)
        assert folded == Binary("add", Var("x"), Constant(6))

    def test_keeps_parameter_dependent_parts(self):
        expr = Binary("add", Param("p"), Constant(1))
        assert fold_constants(expr) == expr

    def test_folds_inside_lambda_bodies(self):
        lam = trace_lambda(lambda s: s.x > 10 * 100)
        folded = fold_constants(lam)
        assert folded == Lambda(
            ("s",), Binary("gt", Member(Var("s"), "x"), Constant(1000))
        )

    def test_folding_survives_division_by_zero(self):
        expr = Binary("truediv", Constant(1), Constant(0))
        # left as-is: failure is the query's business at run time
        assert fold_constants(expr) == expr


class TestParameterization:
    def test_constants_become_params(self):
        expr = Binary("eq", Member(Var("s"), "name"), Constant("London"))
        tree, bindings = parameterize(expr)
        assert isinstance(tree.right, Param)
        assert bindings == {tree.right.name: "London"}

    def test_existing_params_untouched(self):
        expr = Binary("eq", Member(Var("s"), "name"), Param("city"))
        tree, bindings = parameterize(expr)
        assert tree == expr
        assert bindings == {}

    def test_deterministic_names(self):
        e1 = Binary(
            "and",
            Binary("gt", Var("x"), Constant(1)),
            Binary("lt", Var("y"), Constant(2)),
        )
        e2 = Binary(
            "and",
            Binary("gt", Var("x"), Constant(9)),
            Binary("lt", Var("y"), Constant(8)),
        )
        t1, b1 = parameterize(e1)
        t2, b2 = parameterize(e2)
        assert t1 == t2
        assert list(b1) == list(b2)
        assert list(b1.values()) == [1, 2]
        assert list(b2.values()) == [9, 8]


class TestCanonicalization:
    def test_queries_differing_only_in_constants_share_keys(self):
        q1 = canonicalize(where_query(lambda s: s.population > 1_000_000))
        q2 = canonicalize(where_query(lambda s: s.population > 42))
        assert q1.key == q2.key
        assert q1.bindings != q2.bindings

    def test_structurally_different_queries_have_different_keys(self):
        q1 = canonicalize(where_query(lambda s: s.population > 1))
        q2 = canonicalize(where_query(lambda s: s.population < 1))
        assert q1.key != q2.key

    def test_schema_token_separates_keys(self):
        q1 = canonicalize(where_query(lambda s: s.population > 1, token="City"))
        q2 = canonicalize(where_query(lambda s: s.population > 1, token="Town"))
        assert q1.key != q2.key

    def test_folding_normalizes_equivalent_constants(self):
        q1 = canonicalize(where_query(lambda s: s.x > 2 * 50))
        q2 = canonicalize(where_query(lambda s: s.x > 100))
        assert q1.key == q2.key
        assert list(q1.bindings.values()) == [100]

    def test_cache_key_includes_engine_and_options(self):
        canonical = canonicalize(where_query(lambda s: s.x > 1))
        assert cache_key(canonical, "native") != cache_key(canonical, "compiled")
        assert cache_key(canonical, "native", ("opt",)) != cache_key(
            canonical, "native"
        )
