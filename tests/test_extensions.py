"""Tests for the §9 future-work extensions: indexes, statistics, recycling."""

import datetime
from types import SimpleNamespace

import pytest

from repro import P
from repro.plans import ColumnStats, TableStats, estimate_selectivity
from repro.plans.optimizer import optimize
from repro.plans.translate import translate
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.query.recycler import RecyclingProvider
from repro.storage import Field, HashIndex, Schema, StructArray


def item(**kw):
    return SimpleNamespace(**kw)


ROW = Schema(
    [Field("k", "int"), Field("tag", "str", 4), Field("v", "float")],
    name="Row",
)


def make_array(n=1000):
    return StructArray.from_rows(
        ROW, [(i % 50, ["aa", "bb"][i % 2], float(i)) for i in range(n)]
    )


# ---------------------------------------------------------------------------
# hash indexes
# ---------------------------------------------------------------------------


class TestHashIndex:
    def test_lookup_positions(self):
        array = make_array(200)
        index = HashIndex(array, "k")
        positions = index.lookup(7)
        assert list(positions) == [7, 57, 107, 157]
        assert len(index) == 50

    def test_lookup_miss(self):
        index = HashIndex(make_array(10), "k")
        assert len(index.lookup(999)) == 0

    def test_string_lookup_encodes(self):
        index = HashIndex(make_array(10), "tag")
        assert list(index.lookup("aa")) == [0, 2, 4, 6, 8]

    def test_create_index_registers_and_caches(self):
        array = make_array(10)
        first = array.create_index("k")
        second = array.create_index("k")
        assert first is second
        assert array.get_index("k") is first
        assert array.get_index("v") is None

    def test_native_filter_uses_index(self):
        array = make_array(1000)
        array.create_index("k")
        provider = QueryProvider()
        query = (
            from_struct_array(array)
            .using("native", provider)
            .where(lambda s: s.k == P("key"))
            .with_params(key=3)
        )
        info = provider.compile_info(query.expr, [array], "native")
        assert ".lookup(" in info.source_code
        assert query.count() == 20

    def test_index_with_residual_predicate(self):
        array = make_array(1000)
        array.create_index("k")
        query = (
            from_struct_array(array)
            .where(lambda s: (s.k == P("key")) & (s.v < 500))
            .with_params(key=3)
        )
        expected = sum(1 for i in range(1000) if i % 50 == 3 and i < 500)
        assert query.count() == expected

    def test_results_identical_with_and_without_index(self):
        plain = make_array(500)
        indexed = make_array(500)
        indexed.create_index("k")
        provider = QueryProvider()

        def run(array):
            return (
                from_struct_array(array)
                .using("native", provider)
                .where(lambda s: s.k == P("key"))
                .select(lambda s: s.v)
                .with_params(key=11)
                .to_list()
            )

        assert run(plain) == run(indexed)

    def test_creating_index_invalidates_compiled_plan(self):
        array = make_array(300)
        provider = QueryProvider()
        query = (
            from_struct_array(array)
            .using("native", provider)
            .where(lambda s: s.k == P("key"))
        )
        before = provider.compile_info(query.expr, [array], "native")
        assert ".lookup(" not in before.source_code
        array.create_index("k")
        after = provider.compile_info(query.expr, [array], "native")
        assert ".lookup(" in after.source_code


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


class TestTableStats:
    def test_collect_from_struct_array(self):
        stats = TableStats.collect(make_array(100))
        assert stats.row_count == 100
        assert stats.column("k").distinct == 50
        assert stats.column("v").minimum == 0.0
        assert stats.column("v").maximum == 99.0
        assert stats.column("tag").distinct == 2

    def test_collect_from_objects(self):
        items = [item(a=i % 3, b=float(i)) for i in range(30)]
        stats = TableStats.collect(items)
        assert stats.column("a").distinct == 3
        assert stats.column("b").maximum == 29.0

    def test_date_bounds(self):
        items = [
            item(d=datetime.date(2020, 1, 1) + datetime.timedelta(days=i))
            for i in range(10)
        ]
        stats = TableStats.collect(items)
        column = stats.column("d")
        assert column.maximum - column.minimum == 9

    def test_equality_selectivity(self):
        assert ColumnStats(100, 50).equality_selectivity == pytest.approx(0.02)

    def test_range_selectivity(self):
        column = ColumnStats(100, 100, minimum=0.0, maximum=100.0)
        assert column.range_selectivity("lt", 25.0) == pytest.approx(0.25)
        assert column.range_selectivity("gt", 25.0) == pytest.approx(0.75)
        assert column.range_selectivity("lt", -5.0) == 0.0
        assert column.range_selectivity("gt", 999.0) == 0.0


class TestSelectivityEstimation:
    def _stats(self):
        return TableStats(
            {
                "k": ColumnStats(1000, 500, 0, 499),
                "flag": ColumnStats(1000, 2),
                "v": ColumnStats(1000, 1000, 0.0, 1000.0),
            },
            1000,
        )

    def _conjunct(self, fn):
        from repro.expressions import trace_lambda

        return trace_lambda(fn).body

    def test_equality_uses_ndv(self):
        sel = estimate_selectivity(
            self._conjunct(lambda s: s.k == 5), "s", self._stats()
        )
        assert sel == pytest.approx(1 / 500)

    def test_high_vs_low_cardinality(self):
        stats = self._stats()
        selective = estimate_selectivity(self._conjunct(lambda s: s.k == 5), "s", stats)
        broad = estimate_selectivity(self._conjunct(lambda s: s.flag == 1), "s", stats)
        assert selective < broad

    def test_range_with_constant(self):
        sel = estimate_selectivity(
            self._conjunct(lambda s: s.v < 100), "s", self._stats()
        )
        assert sel == pytest.approx(0.1)

    def test_flipped_operands(self):
        sel = estimate_selectivity(
            self._conjunct(lambda s: 100 > s.v), "s", self._stats()
        )
        assert sel == pytest.approx(0.1)

    def test_negation(self):
        sel = estimate_selectivity(
            self._conjunct(lambda s: ~(s.v < 100)), "s", self._stats()
        )
        assert sel == pytest.approx(0.9)

    def test_unknown_column_defaults(self):
        sel = estimate_selectivity(
            self._conjunct(lambda s: s.zz == 1), "s", self._stats()
        )
        assert sel == pytest.approx(1 / 3)


class TestStatisticsDrivenReordering:
    def test_most_selective_conjunct_first(self):
        from repro.expressions.nodes import QueryOp, SourceExpr
        from repro.expressions import trace_lambda

        stats = {
            "T": TableStats(
                {
                    "rare": ColumnStats(1000, 1000),
                    "common": ColumnStats(1000, 2),
                },
                1000,
            )
        }
        expr = QueryOp(
            "where",
            SourceExpr(0, "T"),
            (trace_lambda(lambda s: (s.common == 1) & (s.rare == 42)),),
        )
        plan = optimize(translate(expr), statistics=stats)
        first = plan.predicate.body.left
        assert first.left.name == "rare"  # 1/1000 ranked before 1/2

    def test_parameter_sniffing_resolves_ranges(self):
        from repro.expressions.nodes import QueryOp, SourceExpr
        from repro.expressions import trace_lambda

        stats = {
            "T": TableStats({"v": ColumnStats(1000, 1000, 0.0, 1000.0)}, 1000)
        }
        expr = QueryOp(
            "where",
            SourceExpr(0, "T"),
            (trace_lambda(lambda s: (s.v < P("hi")) & (s.v > P("lo"))),),
        )
        # hi=999 keeps almost everything; lo=999 keeps almost nothing
        plan = optimize(
            translate(expr),
            statistics=stats,
            param_values={"hi": 999.0, "lo": 999.0},
        )
        assert plan.predicate.body.left.op == "gt"  # the selective one first

    def test_provider_registration_changes_plan(self):
        provider = QueryProvider()
        items = [item(rare=i, common=i % 2) for i in range(100)]
        base = from_iterable(items, token="stats:T").using("compiled", provider)
        query = base.where(lambda s: (s.common == 1) & (s.rare == 43))
        # cost heuristic: written order retained (both cheap comparisons)
        assert "common" in query.explain().split("rare")[0]
        provider.register_statistics("stats:T", TableStats.collect(items))
        assert query.count() == 1  # still correct
        explained = provider.explain(query.expr, "compiled")
        assert "rare" in explained.split("common")[0]


# ---------------------------------------------------------------------------
# result recycling
# ---------------------------------------------------------------------------


class TestRecyclingProvider:
    def _query(self, provider, items):
        return (
            from_iterable(items, token="rec:T")
            .using("compiled", provider)
            .where(lambda s: s.k > P("t"))
            .select(lambda s: s.v)
        )

    def test_repeat_execution_recycles(self):
        provider = RecyclingProvider()
        items = [item(k=i, v=float(i)) for i in range(100)]
        query = self._query(provider, items).with_params(t=50)
        first = query.to_list()
        second = query.to_list()
        assert first == second
        assert provider.recycler_stats.hits == 1
        assert provider.recycler_stats.misses == 1

    def test_different_params_not_recycled(self):
        provider = RecyclingProvider()
        items = [item(k=i, v=float(i)) for i in range(100)]
        query = self._query(provider, items)
        a = query.with_params(t=10).to_list()
        b = query.with_params(t=90).to_list()
        assert len(a) != len(b)
        assert provider.recycler_stats.hits == 0
        # but the *code* cache still shares one compilation
        assert provider.cache.stats.misses == 1

    def test_scalar_recycling(self):
        provider = RecyclingProvider()
        items = [item(k=i, v=float(i)) for i in range(100)]
        base = from_iterable(items, token="rec:S").using("compiled", provider)
        assert base.sum(lambda s: s.v) == base.sum(lambda s: s.v)
        assert provider.recycler_stats.hits == 1

    def test_appending_to_source_invalidates_by_length(self):
        provider = RecyclingProvider()
        items = [item(k=i, v=float(i)) for i in range(10)]
        query = self._query(provider, items).with_params(t=-1)
        assert len(query.to_list()) == 10
        items.append(item(k=99, v=99.0))
        assert len(query.to_list()) == 11  # fingerprint changed: re-ran

    def test_in_place_mutation_requires_invalidate(self):
        provider = RecyclingProvider()
        items = [item(k=1, v=1.0)]
        query = self._query(provider, items).with_params(t=0)
        assert query.to_list() == [1.0]
        items[0].v = 2.0  # invisible to the fingerprint
        assert query.to_list() == [1.0]  # stale, by documented contract
        provider.invalidate(items)
        assert query.to_list() == [2.0]

    def test_invalidate_all(self):
        provider = RecyclingProvider()
        items = [item(k=1, v=1.0)]
        self._query(provider, items).with_params(t=0).to_list()
        assert provider.cached_results == 1
        assert provider.invalidate() == 1
        assert provider.cached_results == 0

    def test_lru_bound(self):
        provider = RecyclingProvider(max_results=2)
        items = [item(k=i, v=float(i)) for i in range(5)]
        query = self._query(provider, items)
        for t in (0, 1, 2):
            query.with_params(t=t).to_list()
        assert provider.cached_results == 2

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RecyclingProvider(max_results=0)

    def test_unhashable_params_bypass(self):
        provider = RecyclingProvider()
        items = [item(k=1, v=1.0)]
        base = from_iterable(items, token="rec:U").using("linq", provider)
        query = base.where(lambda s: s.k.contains(P("xs")))  # never executed

        class Weird:
            __hash__ = None

        key = provider._result_key(
            query.expr, list(query.sources), "linq", {"xs": Weird()}
        )
        assert key is None
