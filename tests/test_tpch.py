"""TPC-H substrate tests: datagen determinism + Q1–Q3 on every engine."""

import datetime

import pytest

from repro.query import QueryProvider
from repro.tpch import (
    TPCHData,
    aggregation_micro,
    join_micro,
    q1,
    q2,
    q3,
    reference_join_micro,
    reference_q1,
    reference_q2,
    reference_q3,
    relation_query,
    sorting_micro,
)

SCALE = 0.003
ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")


@pytest.fixture(scope="module")
def data():
    return TPCHData(scale=SCALE)


@pytest.fixture(scope="module")
def provider():
    return QueryProvider()


class TestDatagen:
    def test_deterministic_across_instances(self, data):
        other = TPCHData(scale=SCALE)
        for name in ("lineitem", "orders", "part"):
            assert (other.arrays(name).data == data.arrays(name).data).all()

    def test_seed_changes_data(self, data):
        other = TPCHData(scale=SCALE, seed=7)
        a, b = other.arrays("lineitem").data, data.arrays("lineitem").data
        assert len(a) != len(b) or not (a == b).all()

    def test_row_counts_scale(self, data):
        assert data.row_count("region") == 5
        assert data.row_count("nation") == 25
        assert data.row_count("orders") == int(1_500_000 * SCALE)
        # ~4 lineitems per order
        ratio = data.row_count("lineitem") / data.row_count("orders")
        assert 3.0 < ratio < 5.0

    def test_referential_integrity(self, data):
        customers = set(data.arrays("customer").column("c_custkey").tolist())
        for o in data.objects("orders")[:200]:
            assert o.o_custkey in customers
        orders = set(data.arrays("orders").column("o_orderkey").tolist())
        for l in data.objects("lineitem")[:200]:
            assert l.l_orderkey in orders

    def test_date_correlations(self, data):
        for l in data.objects("lineitem")[:200]:
            assert l.l_shipdate < l.l_receiptdate
            assert l.l_shipdate > datetime.date(1992, 1, 1)

    def test_partsupp_pairs_unique(self, data):
        ps = data.arrays("partsupp")
        pairs = list(
            zip(ps.column("ps_partkey").tolist(), ps.column("ps_suppkey").tolist())
        )
        assert len(pairs) == len(set(pairs))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TPCHData(scale=0)


class TestQ1:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, data, provider, engine):
        expected = reference_q1(data)
        rows = q1(data, engine, provider).to_list()
        assert len(rows) == len(expected)
        for got, exp in zip(rows, expected):
            assert (got.l_returnflag, got.l_linestatus) == (exp[0], exp[1])
            assert got.sum_qty == pytest.approx(exp[2])
            assert got.sum_base_price == pytest.approx(exp[3])
            assert got.sum_disc_price == pytest.approx(exp[4])
            assert got.sum_charge == pytest.approx(exp[5])
            assert got.avg_qty == pytest.approx(exp[6])
            assert got.avg_price == pytest.approx(exp[7])
            assert got.avg_disc == pytest.approx(exp[8])
            assert got.count_order == exp[9]


class TestQ2:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, data, provider, engine):
        expected = reference_q2(data)
        rows = q2(data, engine, provider).to_list()
        got = [
            (round(r.s_acctbal, 2), r.s_name, r.n_name, r.p_partkey, r.p_mfgr)
            for r in rows
        ]
        exp = [(round(a, 2), b, c, d, e) for a, b, c, d, e in expected]
        assert got == exp


class TestQ3:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, data, provider, engine):
        expected = reference_q3(data)
        rows = q3(data, engine, provider).to_list()
        got = [
            (r.l_orderkey, round(r.revenue, 2), r.o_orderdate, r.o_shippriority)
            for r in rows
        ]
        exp = [(a, round(b, 2), c, d) for a, b, c, d in expected]
        assert got == exp


class TestMicros:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("selectivity", (0.2, 1.0))
    def test_aggregation_micro_consistent(self, data, provider, engine, selectivity):
        rows = aggregation_micro(data, engine, selectivity, provider).to_list()
        baseline = aggregation_micro(data, "linq", selectivity, provider).to_list()
        got = {(r.rf, r.ls): (round(r.sum_qty, 2), r.count_order) for r in rows}
        exp = {(r.rf, r.ls): (round(r.sum_qty, 2), r.count_order) for r in baseline}
        assert got == exp

    @pytest.mark.parametrize("engine", ("compiled", "native", "hybrid_min"))
    def test_sorting_micro_consistent(self, data, provider, engine):
        got = [r.l_extendedprice for r in sorting_micro(data, engine, 0.3, provider)]
        exp = [r.l_extendedprice for r in sorting_micro(data, "linq", 0.3, provider)]
        assert got == pytest.approx(exp)

    @pytest.mark.parametrize(
        "engine",
        ENGINES + ("hybrid_min", "hybrid_min_buffered"),
    )
    def test_join_micro_row_count(self, data, provider, engine):
        rows = join_micro(data, engine, 0.5, provider).to_list()
        assert len(rows) == reference_join_micro(data, 0.5)

    def test_selectivity_monotone(self, data, provider):
        counts = [
            relation_query(data, "lineitem", "native", provider)
            .where(lambda l: l.l_quantity <= 50.0 * s)
            .count()
            for s in (0.2, 0.5, 1.0)
        ]
        assert counts[0] < counts[1] < counts[2]
        assert counts[2] == data.row_count("lineitem")

    def test_selectivity_approximates_target(self, data, provider):
        total = data.row_count("lineitem")
        for s in (0.1, 0.5, 0.9):
            n = (
                relation_query(data, "lineitem", "native", provider)
                .where(lambda l: l.l_quantity <= 50.0 * s)
                .count()
            )
            assert abs(n / total - s) < 0.05
