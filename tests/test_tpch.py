"""TPC-H substrate tests: datagen determinism + conformance on every engine.

Q1–Q3 cover the paper's aggregation/sort/join fragment; Q4, Q13, Q16,
Q21 and Q22 are the join/set-operation conformance suite — semi joins
(EXISTS), left outer joins, anti joins (NOT EXISTS / NOT IN), distinct
counting, and prepared scalar sub-query composition — each checked on
every engine, sequentially and under a 2-worker morsel split.
"""

import datetime

import pytest

from repro.query import QueryProvider
from repro.tpch import (
    TPCHData,
    aggregation_micro,
    join_micro,
    q1,
    q2,
    q3,
    q4,
    q13,
    q16,
    q21,
    q22,
    reference_join_micro,
    reference_q1,
    reference_q2,
    reference_q3,
    reference_q4,
    reference_q13,
    reference_q16,
    reference_q21,
    reference_q22,
    relation_query,
    sorting_micro,
)

SCALE = 0.003
ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")


@pytest.fixture(scope="module")
def data():
    return TPCHData(scale=SCALE)


@pytest.fixture(scope="module")
def provider():
    return QueryProvider()


class TestDatagen:
    def test_deterministic_across_instances(self, data):
        other = TPCHData(scale=SCALE)
        for name in ("lineitem", "orders", "part"):
            assert (other.arrays(name).data == data.arrays(name).data).all()

    def test_seed_changes_data(self, data):
        other = TPCHData(scale=SCALE, seed=7)
        a, b = other.arrays("lineitem").data, data.arrays("lineitem").data
        assert len(a) != len(b) or not (a == b).all()

    def test_row_counts_scale(self, data):
        assert data.row_count("region") == 5
        assert data.row_count("nation") == 25
        assert data.row_count("orders") == int(1_500_000 * SCALE)
        # ~4 lineitems per order
        ratio = data.row_count("lineitem") / data.row_count("orders")
        assert 3.0 < ratio < 5.0

    def test_referential_integrity(self, data):
        customers = set(data.arrays("customer").column("c_custkey").tolist())
        for o in data.objects("orders")[:200]:
            assert o.o_custkey in customers
        orders = set(data.arrays("orders").column("o_orderkey").tolist())
        for l in data.objects("lineitem")[:200]:
            assert l.l_orderkey in orders

    def test_date_correlations(self, data):
        for l in data.objects("lineitem")[:200]:
            assert l.l_shipdate < l.l_receiptdate
            assert l.l_shipdate > datetime.date(1992, 1, 1)

    def test_partsupp_pairs_unique(self, data):
        ps = data.arrays("partsupp")
        pairs = list(
            zip(ps.column("ps_partkey").tolist(), ps.column("ps_suppkey").tolist())
        )
        assert len(pairs) == len(set(pairs))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TPCHData(scale=0)


class TestQ1:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, data, provider, engine):
        expected = reference_q1(data)
        rows = q1(data, engine, provider).to_list()
        assert len(rows) == len(expected)
        for got, exp in zip(rows, expected):
            assert (got.l_returnflag, got.l_linestatus) == (exp[0], exp[1])
            assert got.sum_qty == pytest.approx(exp[2])
            assert got.sum_base_price == pytest.approx(exp[3])
            assert got.sum_disc_price == pytest.approx(exp[4])
            assert got.sum_charge == pytest.approx(exp[5])
            assert got.avg_qty == pytest.approx(exp[6])
            assert got.avg_price == pytest.approx(exp[7])
            assert got.avg_disc == pytest.approx(exp[8])
            assert got.count_order == exp[9]


class TestQ2:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, data, provider, engine):
        expected = reference_q2(data)
        rows = q2(data, engine, provider).to_list()
        got = [
            (round(r.s_acctbal, 2), r.s_name, r.n_name, r.p_partkey, r.p_mfgr)
            for r in rows
        ]
        exp = [(round(a, 2), b, c, d, e) for a, b, c, d, e in expected]
        assert got == exp


class TestQ3:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, data, provider, engine):
        expected = reference_q3(data)
        rows = q3(data, engine, provider).to_list()
        got = [
            (r.l_orderkey, round(r.revenue, 2), r.o_orderdate, r.o_shippriority)
            for r in rows
        ]
        exp = [(a, round(b, 2), c, d) for a, b, c, d in expected]
        assert got == exp


PARALLELISM = (None, 2)


def _run(builder, data, provider, engine, parallelism):
    query = builder(data, engine, provider)
    if parallelism:
        query = query.in_parallel(parallelism)
    return query.to_list()


class TestQ4:
    """Semi join: EXISTS over late lineitems."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_matches_reference(self, data, provider, engine, parallelism):
        rows = _run(q4, data, provider, engine, parallelism)
        got = [(r.o_orderpriority, r.order_count) for r in rows]
        assert got == reference_q4(data)

    def test_nonempty(self, data, provider):
        assert len(reference_q4(data)) > 1


class TestQ13:
    """Left outer join: customers with zero orders still counted."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_matches_reference(self, data, provider, engine, parallelism):
        rows = _run(q13, data, provider, engine, parallelism)
        got = [(r.c_count, r.custdist) for r in rows]
        assert got == reference_q13(data)

    def test_zero_bucket_present(self, data, provider):
        # the left join's raison d'être: order-less customers appear
        assert any(count == 0 for count, _ in reference_q13(data))


class TestQ16:
    """Anti join (NOT IN flagged suppliers) + distinct supplier count."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_matches_reference(self, data, provider, engine, parallelism):
        rows = _run(q16, data, provider, engine, parallelism)
        got = [(r.p_brand, r.p_type, r.p_size, r.supplier_cnt) for r in rows]
        assert got == reference_q16(data)

    def test_anti_join_excludes_rows(self, data, provider):
        # the flagged-supplier exclusion must actually bite
        strict = reference_q16(data)
        relaxed = reference_q16(data, min_bal=-10_000.0)
        assert sum(r[3] for r in strict) < sum(r[3] for r in relaxed)


class TestQ21:
    """Semi + anti join stack: sole late supplier of multi-supplier orders."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_matches_reference(self, data, provider, engine, parallelism):
        rows = _run(q21, data, provider, engine, parallelism)
        got = [(r.s_name, r.numwait) for r in rows]
        assert got == reference_q21(data)

    def test_nonempty(self, data, provider):
        assert len(reference_q21(data)) > 0


class TestQ22:
    """Anti join + scalar sub-query composed through prepared parameters."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_matches_reference(self, data, provider, engine, parallelism):
        rows = _run(q22, data, provider, engine, parallelism)
        got = [(r.cntrycode, r.numcust, round(r.totacctbal, 2)) for r in rows]
        exp = [(c, n, round(t, 2)) for c, n, t in reference_q22(data)]
        assert got == exp

    def test_nonempty(self, data, provider):
        assert len(reference_q22(data)) > 0


class TestMicros:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("selectivity", (0.2, 1.0))
    def test_aggregation_micro_consistent(self, data, provider, engine, selectivity):
        rows = aggregation_micro(data, engine, selectivity, provider).to_list()
        baseline = aggregation_micro(data, "linq", selectivity, provider).to_list()
        got = {(r.rf, r.ls): (round(r.sum_qty, 2), r.count_order) for r in rows}
        exp = {(r.rf, r.ls): (round(r.sum_qty, 2), r.count_order) for r in baseline}
        assert got == exp

    @pytest.mark.parametrize("engine", ("compiled", "native", "hybrid_min"))
    def test_sorting_micro_consistent(self, data, provider, engine):
        got = [r.l_extendedprice for r in sorting_micro(data, engine, 0.3, provider)]
        exp = [r.l_extendedprice for r in sorting_micro(data, "linq", 0.3, provider)]
        assert got == pytest.approx(exp)

    @pytest.mark.parametrize(
        "engine",
        ENGINES + ("hybrid_min", "hybrid_min_buffered"),
    )
    def test_join_micro_row_count(self, data, provider, engine):
        rows = join_micro(data, engine, 0.5, provider).to_list()
        assert len(rows) == reference_join_micro(data, 0.5)

    def test_selectivity_monotone(self, data, provider):
        counts = [
            relation_query(data, "lineitem", "native", provider)
            .where(lambda l: l.l_quantity <= 50.0 * s)
            .count()
            for s in (0.2, 0.5, 1.0)
        ]
        assert counts[0] < counts[1] < counts[2]
        assert counts[2] == data.row_count("lineitem")

    def test_selectivity_approximates_target(self, data, provider):
        total = data.row_count("lineitem")
        for s in (0.1, 0.5, 0.9):
            n = (
                relation_query(data, "lineitem", "native", provider)
                .where(lambda l: l.l_quantity <= 50.0 * s)
                .count()
            )
            assert abs(n / total - s) < 0.05
