"""Static analysis: type inference, plan validation, AST verifier gate.

Malformed queries must fail *before* codegen with a typed
``QueryAnalysisError`` on every engine — never with a raw
``NameError``/``AttributeError``/``TypeError`` escaping generated code —
and every generated module must pass the AST verifier.
"""

import datetime
from collections import namedtuple

import numpy as np
import pytest

import repro.codegen.compiler as compiler_module
from repro.codegen.compiler import compile_source
from repro.codegen.verifier import (
    SAFE_BUILTINS,
    check_generated,
    verify_source,
)
from repro.errors import (
    CodegenError,
    GeneratedCodeViolation,
    QueryAnalysisError,
    ReproError,
    UnsupportedQueryError,
)
from repro.expressions import new
from repro.expressions.analysis import predicate_cost
from repro.expressions.typing import (
    RecordType,
    ScalarType,
    analyze_query,
    kind_resolver,
    type_from_token,
)
from repro.query import QueryProvider, from_iterable, from_struct_array
from repro.storage import Field, Schema, StructArray

ITEM = Schema(
    [
        Field("k", "int"),
        Field("name", "str", 8),
        Field("v", "float"),
        Field("d", "date"),
    ],
    name="Item",
)

Obj = namedtuple("Obj", ["k", "name", "v"])


def make_array():
    return StructArray.from_rows(
        ITEM,
        [
            (1, "aa", 1.5, datetime.date(1995, 1, 1)),
            (2, "bb", 2.5, datetime.date(1996, 1, 1)),
        ],
    )


ENGINES = ("linq", "compiled", "native", "hybrid", "hybrid_buffered")

#: (label, query builder, expected message fragment)
MALFORMED = [
    (
        "unknown_member_select",
        lambda q: q.select(lambda s: s.nope),
        "no member 'nope'",
    ),
    (
        "unknown_member_where",
        lambda q: q.where(lambda s: s.missing > 1),
        "no member 'missing'",
    ),
    (
        "str_field_vs_int",
        lambda q: q.where(lambda s: s.name == 5),
        "mixed-type comparison",
    ),
    (
        "int_field_vs_str",
        lambda q: q.where(lambda s: s.k == "x"),
        "mixed-type comparison",
    ),
    (
        "str_vs_date_field",
        lambda q: q.where(lambda s: s.name == s.d),
        "mixed-type comparison",
    ),
    (
        "arith_minus_on_str",
        lambda q: q.select(lambda s: s.name - 1),
        "not defined on strings",
    ),
    (
        "arith_plus_on_str_fields",
        lambda q: q.select(lambda s: s.name + s.name),
        "not defined on strings",
    ),
    (
        "bare_aggregate",
        lambda q: q.select(lambda g: new(n=g.count())),
        "outside a group selector",
    ),
    (
        "aggregate_in_group_key",
        lambda q: q.group_by(lambda s: s.count(), lambda g: new(k=g.key)),
        "cannot appear in a group_by key",
    ),
    (
        "non_boolean_predicate",
        lambda q: q.where(lambda s: s.name),
        "predicate must produce a boolean",
    ),
    (
        "logical_and_on_str",
        lambda q: q.where(lambda s: s.name & s.name),
        "requires boolean operands",
    ),
    (
        "negate_str",
        lambda q: q.select(lambda s: -s.name),
        "not defined on str",
    ),
    (
        "member_on_scalar",
        lambda q: q.select(lambda s: s.k.year),
        "cannot access member 'year'",
    ),
    (
        "take_non_integer",
        lambda q: q.take("five"),
        "integer count",
    ),
    (
        "group_key_member_unknown",
        lambda q: q.group_by(
            lambda s: s.absent, lambda g: new(k=g.key, n=g.count())
        ),
        "no member 'absent'",
    ),
]


class TestMalformedQueries:
    """~15 ill-typed queries × every engine → QueryAnalysisError pre-codegen."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "label,build,fragment", MALFORMED, ids=[m[0] for m in MALFORMED]
    )
    def test_rejected_before_codegen(self, engine, label, build, fragment):
        q = build(from_struct_array(make_array()).using(engine))
        with pytest.raises(QueryAnalysisError, match=fragment):
            q.to_list()

    @pytest.mark.parametrize("engine", ("linq", "compiled"))
    def test_object_sources_are_sampled(self, engine):
        items = [Obj(1, "aa", 1.5), Obj(2, "bb", 2.5)]
        q = from_iterable(items, token="t:sa").using(engine).select(
            lambda s: s.nope
        )
        with pytest.raises(QueryAnalysisError, match="no member 'nope'"):
            q.to_list()

    def test_scalar_terminal_rejected(self):
        q = from_struct_array(make_array()).using("compiled")
        with pytest.raises(QueryAnalysisError, match="cannot sum"):
            q.sum(lambda s: s.name)

    def test_error_raised_before_backend_exists(self, monkeypatch):
        """Analysis precedes codegen: the backend is never even built."""
        import repro.query.provider as provider_module

        def explode(engine):
            raise AssertionError("backend constructed for an ill-typed query")

        monkeypatch.setattr(provider_module, "_make_backend", explode)
        q = (
            from_struct_array(make_array())
            .using("compiled", QueryProvider())
            .select(lambda s: s.nope)
        )
        with pytest.raises(QueryAnalysisError):
            q.to_list()

    def test_error_carries_path_and_expression(self):
        q = from_struct_array(make_array()).using("compiled").select(
            lambda s: s.nope
        )
        with pytest.raises(QueryAnalysisError) as excinfo:
            q.to_list()
        err = excinfo.value
        assert err.path  # printed path of the offending sub-expression
        assert err.expression is not None
        assert isinstance(err, ReproError)

    def test_well_typed_queries_unaffected(self):
        for engine in ENGINES:
            q = (
                from_struct_array(make_array())
                .using(engine)
                .where(lambda s: s.v > 1.0)
                .select(lambda s: new(k=s.k, v=s.v))
            )
            assert [r.k for r in q.to_list()] == [1, 2]


class TestAnalysisCaching:
    def test_analysis_cached_alongside_compiled(self):
        provider = QueryProvider()
        arr = make_array()

        def run(engine):
            return (
                from_struct_array(arr)
                .using(engine, provider)
                .where(lambda s: s.v > 1.0)
                .to_list()
            )

        run("compiled")
        assert provider.cache.stats.analysis_misses == 1
        # the analysis key is engine-independent: the linq run reuses it
        run("linq")
        assert provider.cache.stats.analysis_hits >= 1
        assert provider.cache.stats.analysis_misses == 1

    def test_compiled_query_carries_analysis(self):
        provider = QueryProvider()
        q = (
            from_struct_array(make_array())
            .using("compiled", provider)
            .where(lambda s: s.v > 1.0)
        )
        compiled = provider.compile_info(q.expr, q.sources, "compiled")
        assert compiled.analysis is not None
        assert compiled.capability is not None and compiled.capability.supported
        assert compiled.verifier_report is not None
        assert compiled.verifier_report.ok


GOOD_SOURCE = '''"""Generated module."""

def execute(sources, _params):
    _param_x = _params['x']
    out_1 = []
    for elem_1 in sources[0]:
        if elem_1 > _param_x:
            out_1.append(elem_1)
    return out_1
'''


class TestVerifier:
    def test_clean_module_passes(self):
        report = verify_source(GOOD_SOURCE, {})
        assert report.ok, report.describe()

    def test_unbound_name(self):
        corrupted = GOOD_SOURCE.replace("_param_x", "_param_y", 1)
        report = verify_source(corrupted, {})
        assert not report.ok
        assert any("unbound name" in v for v in report.violations)

    def test_missing_namespace_binding(self):
        source = GOOD_SOURCE.replace(
            "elem_1 > _param_x", "_helper(elem_1, _param_x)"
        )
        assert not verify_source(source, {}).ok
        # binding the helper in the namespace resolves the load
        assert verify_source(source, {"_helper": max}).ok

    def test_import_forbidden(self):
        source = GOOD_SOURCE.replace(
            "    out_1 = []", "    import os\n    out_1 = []"
        )
        report = verify_source(source, {})
        assert any("import" in v for v in report.violations)

    def test_eval_forbidden(self):
        source = GOOD_SOURCE.replace(
            "elem_1 > _param_x", "eval('elem_1 > _param_x')"
        )
        report = verify_source(source, {})
        assert any("forbidden builtin 'eval'" in v for v in report.violations)

    def test_global_forbidden(self):
        source = GOOD_SOURCE.replace(
            "    out_1 = []", "    global leak_1\n    out_1 = []"
        )
        report = verify_source(source, {})
        assert any("'global'" in v for v in report.violations)

    def test_missing_entry_point(self):
        source = GOOD_SOURCE.replace("def execute", "def run")
        report = verify_source(source, {})
        assert any("entry point" in v for v in report.violations)

    def test_wrong_entry_signature(self):
        source = GOOD_SOURCE.replace(
            "def execute(sources, _params):",
            "def execute(sources, _params, extra):",
        )
        report = verify_source(source, {})
        assert any("exactly (sources, params)" in v for v in report.violations)

    def test_top_level_statement_rejected(self):
        source = GOOD_SOURCE + "\nSTATE = {}\n"
        report = verify_source(source, {})
        assert any("top-level statement" in v for v in report.violations)

    def test_local_shadowing_namespace(self):
        source = GOOD_SOURCE.replace("out_1 = []", "_np = []")
        report = verify_source(source, {"_np": np})
        assert any("shadows a namespace binding" in v for v in report.violations)

    def test_comprehensions_and_nested_defs_resolve(self):
        source = '''"""Generated module."""

def execute(sources, _params):
    def _consume_1(rows_1):
        return [r_1 for r_1 in rows_1 if r_1 > 0]
    page_1 = []
    append_1 = page_1.append
    for elem_1 in sources[0]:
        append_1(elem_1)
        del page_1[:]
    return _consume_1(sorted(sources[0]))
'''
        report = verify_source(source, {})
        assert report.ok, report.describe()

    def test_check_generated_raises_typed_error(self):
        corrupted = GOOD_SOURCE.replace("_param_x", "_param_y", 1)
        with pytest.raises(GeneratedCodeViolation) as excinfo:
            check_generated(corrupted, {})
        err = excinfo.value
        assert err.violations and err.source
        assert isinstance(err, CodegenError) and isinstance(err, ReproError)

    def test_safe_builtins_are_closed(self):
        assert "eval" not in SAFE_BUILTINS
        assert "exec" not in SAFE_BUILTINS
        assert "open" not in SAFE_BUILTINS


class TestCompileGate:
    CORRUPTED = GOOD_SOURCE.replace("_param_x", "_param_y", 1)

    def test_gate_on_by_default(self):
        with pytest.raises(GeneratedCodeViolation):
            compile_source(self.CORRUPTED, {})

    def test_opt_out_per_call(self):
        entry, _ = compile_source(self.CORRUPTED, {}, verify=False)
        assert callable(entry)  # unbound name only explodes when reached

    def test_opt_out_per_process(self):
        compiler_module.VERIFY_GENERATED = False
        try:
            entry, _ = compile_source(self.CORRUPTED, {})
            assert callable(entry)
        finally:
            compiler_module.VERIFY_GENERATED = None
        with pytest.raises(GeneratedCodeViolation):
            compile_source(self.CORRUPTED, {})

    def test_syntax_error_chains_verifier_report(self):
        with pytest.raises(CodegenError, match="does not parse"):
            compile_source("def execute(sources, _params:\n  pass", {})


class TestCapabilityReports:
    def test_provider_uses_capability_for_native_sources(self):
        items = [Obj(1, "aa", 1.5)]
        q = from_iterable(items, token="t:cap").using("native").where(
            lambda s: s.v > 1.0
        )
        with pytest.raises(UnsupportedQueryError, match="StructArray"):
            q.to_list()

    def test_min_staging_shape_rejected(self):
        q = (
            from_struct_array(make_array())
            .using("hybrid_min")
            .group_by(lambda s: s.k, lambda g: new(k=g.key, n=g.count()))
        )
        with pytest.raises(UnsupportedQueryError, match="Min staging"):
            q.to_list()

    def test_supported_plan_reports_clean(self):
        provider = QueryProvider()
        q = (
            from_struct_array(make_array())
            .using("native", provider)
            .where(lambda s: s.v > 1.0)
        )
        compiled = provider.compile_info(q.expr, q.sources, "native")
        assert compiled.capability.engine == "native"
        assert compiled.capability.supported
        assert compiled.capability.describe().startswith("engine 'native'")


class TestInferredKinds:
    def test_schema_token_roundtrip(self):
        element = type_from_token(ITEM.token)
        assert isinstance(element, RecordType)
        assert element.field_type("k") == ScalarType("int")
        assert element.field_type("name") == ScalarType("str")

    def test_kind_resolver_feeds_predicate_cost(self):
        from repro.expressions import trace_lambda

        element = type_from_token(ITEM.token)
        kind_of = kind_resolver(element, "s")
        str_pred = trace_lambda(lambda s: s.name == s.name, arity=1).body
        int_pred = trace_lambda(lambda s: s.k == s.k, arity=1).body
        assert predicate_cost(str_pred, kind_of) > predicate_cost(
            int_pred, kind_of
        )
        # without the resolver the two rank identically (the old bug)
        assert predicate_cost(str_pred) == predicate_cost(int_pred)

    def test_integer_group_sums_are_exact_int64(self):
        from repro.runtime.vectorized import group_aggregate

        codes = np.array([1, 1, 2], dtype=np.int64)
        values = np.array([2**53 + 1, 1, 5], dtype=np.int64)
        _, results = group_aggregate((codes,), [("sum", values)])
        assert results[0].dtype == np.int64
        # float64 accumulation would round 2**53 + 2 down to 2**53
        assert results[0][0] == 2**53 + 2

    def test_analyze_query_result_type(self):
        arr = make_array()
        q = (
            from_struct_array(arr)
            .using("compiled")
            .select(lambda s: new(k=s.k, total=s.v))
        )
        analysis = analyze_query(q.expr, q.sources)
        assert not analysis.scalar
        assert isinstance(analysis.result, RecordType)
        assert analysis.result.field_type("k") == ScalarType("int")
        assert analysis.result.field_type("total") == ScalarType("float")
