"""Tests for the cache simulator, memory model and phase breakdowns."""

import datetime

import numpy as np
import pytest

from repro.profiling import (
    CacheHierarchy,
    CacheLevelConfig,
    MemoryModel,
    aggregation_breakdown,
    default_hierarchy,
    join_breakdown,
    q1_trace,
    q2_trace,
    q3_trace,
    sort_breakdown,
)
from repro.tpch import TPCHData


class TestCacheSimulator:
    def _tiny(self):
        # 2 sets × 2 ways × 64B lines = 256B cache
        return CacheHierarchy([CacheLevelConfig("L1", 256, ways=2)])

    def test_repeat_access_hits(self):
        cache = self._tiny()
        assert cache.access(0) == "memory"
        assert cache.access(0) == "L1"
        assert cache.access(32) == "L1"  # same line

    def test_lru_eviction(self):
        cache = self._tiny()
        # lines 0, 2, 4 map to set 0 (even lines); 2-way ⇒ 0 evicted
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(4 * 64)
        assert cache.access(0 * 64) == "memory"

    def test_lru_refresh(self):
        cache = self._tiny()
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(0 * 64)  # refresh 0 ⇒ 2 is now LRU
        cache.access(4 * 64)  # evicts 2
        assert cache.access(0 * 64) == "L1"
        assert cache.access(2 * 64) == "memory"

    def test_hierarchy_fallthrough(self):
        cache = CacheHierarchy(
            [CacheLevelConfig("L1", 128, ways=1), CacheLevelConfig("L2", 1024, ways=2)]
        )
        cache.access(0)
        cache.access(128)  # same L1 set (1 way) evicts line 0 from L1
        assert cache.access(0) == "L2"

    def test_replay_counts(self):
        cache = self._tiny()
        stats = cache.replay(np.array([0, 0, 64, 64]))
        assert stats["accesses"] == 4
        assert stats["L1_misses"] == 2

    def test_sequential_beats_random(self):
        n = 4000
        seq = np.arange(n) * 8
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 64 * 1024 * 1024, n)
        c1 = default_hierarchy()
        c1.replay(seq)
        c2 = default_hierarchy()
        c2.replay(rand)
        assert c1.llc_misses < c2.llc_misses

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheLevelConfig("L1", 100, ways=3)

    def test_reset(self):
        cache = self._tiny()
        cache.access(0)
        cache.reset()
        assert cache.levels[0].misses == 0
        assert cache.access(0) == "memory"


class TestMemoryModel:
    def test_regions_do_not_overlap(self):
        model = MemoryModel()
        a = model.allocate(1000)
        b = model.allocate(1000)
        assert b >= a + 1000

    def test_scattered_layout_mostly_sequential_with_fragmentation(self):
        model = MemoryModel()
        addresses = model.scattered_layout(1000, 64, fragmentation=0.2)
        ascending = (np.diff(addresses) > 0).mean()
        assert 0.5 < ascending < 1.0  # compacted order, some displacement

    def test_scattered_layout_zero_fragmentation_is_sequential(self):
        model = MemoryModel()
        addresses = model.scattered_layout(100, 64, fragmentation=0.0)
        assert (np.diff(addresses) == 64).all()

    def test_sequential_scan_trace(self):
        model = MemoryModel()
        base = model.allocate(800)
        model.sequential_scan(base, 10, 80)
        trace = model.build()
        assert list(trace) == [base + i * 80 for i in range(10)]

    def test_deterministic(self):
        t1 = q1_trace("linq", {"n_input": 500, "n_selected": 300, "n_groups": 4})
        t2 = q1_trace("linq", {"n_input": 500, "n_selected": 300, "n_groups": 4})
        assert (t1 == t2).all()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            q1_trace("quantum", {"n_input": 10, "n_selected": 5, "n_groups": 1})


class TestFigure14Orderings:
    """The memory model must reproduce the paper's relative miss ordering.

    Traces replay against :func:`scaled_hierarchy`: laptop-scale datasets
    against full-size caches would fit entirely and flatten every curve.
    """

    def _misses(self, trace):
        from repro.profiling import scaled_hierarchy

        cache = scaled_hierarchy()
        cache.replay(trace)
        return cache.llc_misses

    def test_q1_ordering(self):
        counts = {"n_input": 20_000, "n_selected": 19_000, "n_groups": 4}
        misses = {
            engine: self._misses(q1_trace(engine, counts))
            for engine in ("linq", "compiled", "native", "hybrid")
        }
        # Figure 14, Q1: LINQ worst (extra per-aggregate passes), native best
        assert misses["linq"] > 3 * misses["compiled"]
        assert misses["compiled"] > misses["native"]
        assert misses["hybrid"] > misses["native"]
        assert misses["hybrid"] < misses["linq"]

    def test_q3_hybrid_tables_beat_native_when_probes_dominate(self):
        # SF-1-like regime: the join hash table dwarfs the LLC for the
        # native engine but is near-resident after the implicit projection
        counts = {
            "n_lineitem": 50_000,
            "n_li_sel": 45_000,
            "n_orders": 12_000,
            "n_ord_sel": 9_000,
            "n_customer": 1_500,
            "n_cust_sel": 300,
            "n_matches": 8_000,
            "n_groups": 6_500,
        }
        misses = {
            engine: self._misses(q3_trace(engine, counts))
            for engine in ("linq", "native", "hybrid", "hybrid_buffered")
        }
        assert misses["linq"] > misses["native"]
        # smaller projected hash tables: hybrid-full beats native on probing
        assert misses["hybrid"] < misses["native"]
        # full materialization reduces cache pressure vs interleaving
        assert misses["hybrid"] < misses["hybrid_buffered"]

    def test_q2_linq_worst(self):
        counts = {
            "n_part": 2000,
            "n_partsupp": 8000,
            "n_supplier": 100,
            "n_regional_costs": 1600,
            "n_candidates": 30,
            "n_groups": 900,
        }
        misses = {
            engine: self._misses(q2_trace(engine, counts))
            for engine in ("linq", "compiled", "native")
        }
        assert misses["linq"] > misses["compiled"] >= misses["native"]

    def test_proportional_hierarchy_scales(self):
        from repro.profiling import proportional_hierarchy

        cache = proportional_hierarchy(0.01)
        sizes = [level.config.size_bytes for level in cache.levels]
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[2] <= 3 * 1024 * 1024 * 0.011
        with pytest.raises(ValueError):
            proportional_hierarchy(0)


class TestBreakdowns:
    @pytest.fixture(scope="class")
    def data(self):
        return TPCHData(scale=0.002)

    def test_aggregation_breakdown_phases(self, data):
        result = aggregation_breakdown(data.objects("lineitem"), qmax=25.0)
        assert set(result.phases) == {
            "iterate",
            "predicates",
            "staging",
            "aggregation",
            "return_result",
        }
        assert all(v >= 0 for v in result.phases.values())
        assert result.total > 0
        assert "total=" in result.as_row()

    def test_sort_breakdown_phases(self, data):
        result = sort_breakdown(data.objects("lineitem"), qmax=25.0)
        assert set(result.phases) == {
            "iterate",
            "predicates",
            "staging",
            "quicksort",
            "return_result",
        }
        assert result.total > 0

    def test_join_breakdown_phases(self, data):
        result = join_breakdown(
            data.objects("lineitem"),
            data.objects("orders"),
            data.objects("customer"),
            qmax=25.0,
            order_cutoff=datetime.date(1996, 1, 1),
            segment="BUILDING",
        )
        assert set(result.phases) == {
            "iterate",
            "predicates",
            "staging",
            "build_hash_tables",
            "probe_and_return",
        }
        assert result.total > 0

    def test_staging_cost_grows_with_selectivity(self, data):
        lineitems = data.objects("lineitem")
        low = aggregation_breakdown(lineitems, qmax=5.0)
        high = aggregation_breakdown(lineitems, qmax=50.0)
        assert high.phases["staging"] > low.phases["staging"]
