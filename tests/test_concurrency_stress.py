"""Concurrency stress: one shared QueryProvider hammered from many threads.

The provider's find-or-compile sequence and the QueryCache's LRU state are
shared mutable state; these tests drive them from 8+ threads with a mix of
cache-hitting and cache-missing queries and assert

* every thread always observes correct results (no torn artifacts),
* ``CacheStats`` counters stay exactly consistent (no lost updates), and
* a query compiles exactly once no matter how many threads race to it
  (per-key compile locking — no duplicate-compilation races).
"""

import threading

import pytest

from repro import new
from repro.query import QueryCache, QueryProvider, from_iterable
from repro.storage import Field, Schema, StructArray

SCHEMA = Schema(
    [Field("x", "int"), Field("y", "float"), Field("tag", "str", 4)],
    name="Stress",
)

ROWS = [(i, (i % 13) * 0.5, ["aa", "bb", "cc"][i % 3]) for i in range(300)]
OBJECTS = StructArray.from_rows(SCHEMA, ROWS).to_objects()

#: distinct query shapes; thresholds canonicalize to parameters, so every
#: shape is exactly one cache entry regardless of the constant used
SHAPE_COUNT = 6


def _query(provider, shape, threshold):
    base = from_iterable(OBJECTS, schema=SCHEMA).using("compiled", provider)
    if shape == 0:
        return ("rows", base.where(lambda r: r.x > threshold))
    if shape == 1:
        return ("rows", base.select(lambda r: new(x=r.x, z=r.y + r.y)))
    if shape == 2:
        return (
            "rows",
            base.group_by(
                lambda r: r.tag, lambda g: new(k=g.key, n=g.count())
            ),
        )
    if shape == 3:
        return ("rows", base.select(lambda r: r.tag).distinct())
    if shape == 4:
        return ("scalar", base.where(lambda r: r.x < threshold))
    return ("scalar", base.where(lambda r: r.tag == "aa"))


def _expected(shape, threshold):
    if shape == 0:
        return [o for o in OBJECTS if o.x > threshold]
    if shape == 1:
        return [(o.x, o.y + o.y) for o in OBJECTS]
    if shape == 2:
        counts = {}
        for o in OBJECTS:
            counts[o.tag] = counts.get(o.tag, 0) + 1
        return list(counts.items())
    if shape == 3:
        seen = []
        for o in OBJECTS:
            if o.tag not in seen:
                seen.append(o.tag)
        return seen
    if shape == 4:
        return sum(1 for o in OBJECTS if o.x < threshold)
    return sum(o.y for o in OBJECTS if o.tag == "aa")


def _run_one(provider, shape, threshold):
    kind, q = _query(provider, shape, threshold)
    if kind == "scalar":
        if shape == 4:
            return q.count()
        return q.sum(lambda r: r.y)
    result = list(q)
    if shape == 1:
        return [(row.x, row.z) for row in result]
    if shape == 2:
        return [(row.k, row.n) for row in result]
    return result


def _count_compiles(provider):
    """Monkey-wrap _compile with a thread-safe invocation counter."""
    lock = threading.Lock()
    counter = {"n": 0}
    original = provider._compile

    def counting(canonical, sources, engine):
        with lock:
            counter["n"] += 1
        return original(canonical, sources, engine)

    provider._compile = counting
    return counter


@pytest.mark.parametrize("repetition", range(3))
def test_shared_provider_stress(repetition):
    provider = QueryProvider()
    compiles = _count_compiles(provider)
    n_threads = 10
    iterations = 25
    failures = []
    barrier = threading.Barrier(n_threads)

    def worker(tid):
        barrier.wait()  # maximize racing on the cold cache
        for i in range(iterations):
            shape = (tid + i) % SHAPE_COUNT
            threshold = (tid * 31 + i * 7) % 250
            try:
                got = _run_one(provider, shape, threshold)
                want = _expected(shape, threshold)
                if got != want:
                    failures.append((tid, shape, threshold, got, want))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((tid, shape, threshold, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not failures, failures[:5]

    stats = provider.cache.stats
    executions = n_threads * iterations
    # exactly one cache probe per execution — hits + misses must balance
    # even under contention (a lost update would break this sum)
    assert stats.hits + stats.misses == executions
    # per-key locking: each of the 6 shapes compiled exactly once, no
    # matter that 10 threads raced to a cold cache
    assert compiles["n"] == SHAPE_COUNT
    assert stats.misses == SHAPE_COUNT
    assert stats.hits == executions - SHAPE_COUNT
    assert stats.evictions == 0
    assert len(provider.cache) == SHAPE_COUNT


def test_cold_cache_single_compilation_race():
    """All threads race to one uncompiled query: exactly one compile."""
    provider = QueryProvider()
    compiles = _count_compiles(provider)
    n_threads = 12
    barrier = threading.Barrier(n_threads)
    results = []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        got = _run_one(provider, 0, 150)
        with lock:
            results.append(got)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    want = _expected(0, 150)
    assert all(r == want for r in results)
    assert compiles["n"] == 1
    assert provider.cache.stats.misses == 1
    assert provider.cache.stats.hits == n_threads - 1


@pytest.mark.parametrize("repetition", range(2))
def test_stress_under_eviction(repetition):
    """A tiny cache forces evict/recompile churn; stats stay consistent."""
    provider = QueryProvider(cache=QueryCache(max_entries=3))
    compiles = _count_compiles(provider)
    n_threads = 8
    iterations = 20
    failures = []
    barrier = threading.Barrier(n_threads)

    def worker(tid):
        barrier.wait()
        for i in range(iterations):
            shape = (tid * 5 + i) % SHAPE_COUNT
            threshold = (tid + i * 11) % 250
            try:
                got = _run_one(provider, shape, threshold)
                want = _expected(shape, threshold)
                if got != want:
                    failures.append((tid, shape, threshold))
            except Exception as exc:  # noqa: BLE001
                failures.append((tid, shape, threshold, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not failures, failures[:5]
    stats = provider.cache.stats
    executions = n_threads * iterations
    assert stats.hits + stats.misses == executions
    # every miss compiled (eviction forces recompilation, never corruption)
    assert compiles["n"] == stats.misses
    assert len(provider.cache) <= 3
    # eviction accounting is exact for BOTH entry kinds: entries stored
    # minus entries still resident equals entries evicted
    resident_compiled = len(provider.cache._entries)
    resident_analyses = len(provider.cache._analyses)
    stored_compiled = stats.misses
    stored_analyses = stats.analysis_misses
    assert stats.evictions == (stored_compiled - resident_compiled) + (
        stored_analyses - resident_analyses
    )


def test_parallel_execution_from_many_threads():
    """Threads running *parallel* queries nest worker pools safely."""
    provider = QueryProvider()
    n_threads = 8
    failures = []
    barrier = threading.Barrier(n_threads)
    base = from_iterable(OBJECTS, schema=SCHEMA).using("compiled", provider)
    q = base.group_by(
        lambda r: r.tag, lambda g: new(k=g.key, t=g.sum(lambda r: r.y))
    )
    want = list(q)

    def worker(tid):
        barrier.wait()
        for _ in range(10):
            got = list(q.in_parallel(2 + tid % 3, 29))
            if got != want:
                failures.append((tid, got))

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:3]
