"""Tests for the reference interpreter and printer round-trips."""

from types import SimpleNamespace

import pytest

from repro.errors import ExecutionError, UnsupportedExpressionError
from repro.expressions import (
    Call,
    Constant,
    Member,
    Param,
    ScalarPrinter,
    Var,
    interpret,
    make_callable,
    make_record_type,
    trace_lambda,
    new,
    if_then_else,
    P,
    substitute,
)


def make_item(**kw):
    return SimpleNamespace(**kw)


class TestInterpreter:
    def test_constant(self):
        assert interpret(Constant(42)) == 42

    def test_var_binding(self):
        assert interpret(Var("x"), env={"x": 7}) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(ExecutionError, match="unbound variable"):
            interpret(Var("x"))

    def test_param_binding(self):
        assert interpret(Param("p"), params={"p": "London"}) == "London"

    def test_unbound_param_raises(self):
        with pytest.raises(ExecutionError, match="unbound query parameter"):
            interpret(Param("p"))

    def test_member_on_object(self):
        item = make_item(name="London")
        assert interpret(Member(Var("s"), "name"), env={"s": item}) == "London"

    def test_member_on_mapping(self):
        assert interpret(Member(Var("s"), "name"), env={"s": {"name": "x"}}) == "x"

    def test_traced_predicate_semantics(self):
        lam = trace_lambda(lambda s: (s.x > 1) & (s.y < 5))
        f = make_callable(lam)
        assert f(make_item(x=2, y=3)) is True
        assert f(make_item(x=0, y=3)) is False
        assert f(make_item(x=2, y=9)) is False

    def test_traced_arithmetic(self):
        lam = trace_lambda(lambda s: s.price * (1 - s.discount))
        f = make_callable(lam)
        assert f(make_item(price=100.0, discount=0.25)) == pytest.approx(75.0)

    def test_conditional(self):
        lam = trace_lambda(lambda s: if_then_else(s.x > 0, s.x, -s.x))
        f = make_callable(lam)
        assert f(make_item(x=-4)) == 4
        assert f(make_item(x=3)) == 3

    def test_string_methods(self):
        lam = trace_lambda(lambda s: s.name.startswith("Lo"))
        assert make_callable(lam)(make_item(name="London")) is True
        lam2 = trace_lambda(lambda s: s.name.contains("ondo"))
        assert make_callable(lam2)(make_item(name="London")) is True
        assert make_callable(lam2)(make_item(name="Paris")) is False

    def test_unknown_function_raises(self):
        with pytest.raises(UnsupportedExpressionError):
            interpret(Call("mystery", (Constant(1),)))

    def test_new_builds_record(self):
        lam = trace_lambda(lambda s: new(a=s.x, b=s.x + 1))
        row = make_callable(lam)(make_item(x=5))
        assert (row.a, row.b) == (5, 6)

    def test_params_flow_through_callable(self):
        lam = trace_lambda(lambda s: s.name == P("city"))
        f = make_callable(lam, params={"city": "London"})
        assert f(make_item(name="London")) is True


class TestAggregateInterpretation:
    def _group(self, key, items):
        from repro.runtime.hashtable import Grouping

        return Grouping(key, items)

    def test_sum_over_group(self):
        lam = trace_lambda(lambda g: new(total=g.sum(lambda s: s.v)))
        g = self._group("k", [make_item(v=1), make_item(v=2), make_item(v=3)])
        assert make_callable(lam)(g).total == 6

    def test_count_avg_min_max(self):
        lam = trace_lambda(
            lambda g: new(
                n=g.count(),
                a=g.avg(lambda s: s.v),
                lo=g.min(lambda s: s.v),
                hi=g.max(lambda s: s.v),
            )
        )
        g = self._group("k", [make_item(v=2), make_item(v=4)])
        row = make_callable(lam)(g)
        assert (row.n, row.a, row.lo, row.hi) == (2, 3.0, 2, 4)

    def test_group_key_access(self):
        lam = trace_lambda(lambda g: new(k=g.key, n=g.count()))
        g = self._group("london", [make_item(v=1)])
        assert make_callable(lam)(g).k == "london"


class TestRecordTypes:
    def test_same_fields_share_type(self):
        t1 = make_record_type(("a", "b"))
        t2 = make_record_type(("a", "b"))
        assert t1 is t2

    def test_different_fields_get_distinct_types(self):
        assert make_record_type(("a",)) is not make_record_type(("b",))

    def test_records_compare_by_value(self):
        t = make_record_type(("a", "b"))
        assert t(1, 2) == t(1, 2)


class TestPrinter:
    def _roundtrip(self, fn, env, params=None):
        """Emit source for a traced lambda and compare eval with interpret."""
        lam = trace_lambda(fn)
        var_map = {name: f"elem_{i}" for i, name in enumerate(lam.params)}
        printer = ScalarPrinter(var_map=var_map)
        src = printer.emit(lam.body)
        scope = dict(printer.namespace)
        scope["_params"] = params or {}
        scope.update({var_map[n]: v for n, v in env.items()})
        compiled = eval(src, scope)  # noqa: S307 - test-only eval of our own codegen
        interpreted = interpret(lam.body, env=env, params=params or {})
        assert compiled == interpreted
        return src

    def test_comparison_roundtrip(self):
        src = self._roundtrip(lambda s: s.x > 3, {"s": make_item(x=5)})
        assert "elem_0.x" in src

    def test_arithmetic_roundtrip(self):
        self._roundtrip(
            lambda s: s.price * (1 - s.discount) + 2,
            {"s": make_item(price=10.0, discount=0.5)},
        )

    def test_logic_roundtrip(self):
        self._roundtrip(
            lambda s: (s.x > 1) & ((s.y < 5) | ~(s.z == 0)),
            {"s": make_item(x=2, y=9, z=1)},
        )

    def test_param_rendering(self):
        src = self._roundtrip(
            lambda s: s.name == P("city"),
            {"s": make_item(name="London")},
            params={"city": "London"},
        )
        assert "_params['city']" in src

    def test_method_and_conditional_roundtrip(self):
        self._roundtrip(
            lambda s: if_then_else(s.name.startswith("L"), 1, 0),
            {"s": make_item(name="London")},
        )

    def test_contains_renders_as_in(self):
        lam = trace_lambda(lambda s: s.name.contains("ond"))
        printer = ScalarPrinter(var_map={"s": "e"})
        assert printer.emit(lam.body) == "('ond' in e.name)"

    def test_new_binds_record_type(self):
        lam = trace_lambda(lambda s: new(a=s.x))
        printer = ScalarPrinter(var_map={"s": "e"})
        src = printer.emit(lam.body)
        assert src.startswith("_rt_rowtype_")
        (record_type,) = [v for v in printer.namespace.values()]
        assert record_type._fields == ("a",)

    def test_unknown_var_raises(self):
        printer = ScalarPrinter(var_map={})
        with pytest.raises(UnsupportedExpressionError, match="no code binding"):
            printer.emit(Var("mystery"))

    def test_substitute_then_print(self):
        lam = trace_lambda(lambda s: s.x + 1)
        inlined = substitute(lam.body, {"s": Var("row")})
        printer = ScalarPrinter(var_map={"row": "row"})
        assert printer.emit(inlined) == "(row.x + 1)"
