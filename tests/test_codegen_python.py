"""Unit tests for the §4 backend: generated fused-loop Python."""

from types import SimpleNamespace

import pytest

from repro.codegen.python_backend import PythonBackend
from repro.errors import CodegenError
from repro.expressions import Constant, Lambda, Var, new, trace_lambda
from repro.plans import (
    AggregateSpec,
    Concat,
    Distinct,
    Filter,
    GroupAggregate,
    GroupBy,
    Join,
    Limit,
    Project,
    Scan,
    ScalarAggregate,
    Sort,
    TopN,
    translate,
)
from repro.expressions.nodes import QueryOp, SourceExpr


def item(**kw):
    return SimpleNamespace(**kw)


def compile_plan(plan):
    return PythonBackend().compile(plan, sources=[])


def run(plan, *sources, params=None):
    compiled = compile_plan(plan)
    result = compiled.execute(list(sources), params or {})
    return result if compiled.scalar else list(result)


SCAN = Scan(0, "T")


class TestGeneratedStructure:
    def test_single_fused_loop_for_filter_project(self):
        plan = Project(
            Filter(SCAN, trace_lambda(lambda s: s.x > 1)),
            trace_lambda(lambda s: s.x * 2),
        )
        compiled = compile_plan(plan)
        # exactly one loop over the source: pipelined operators fuse
        assert compiled.source_code.count("for elem") == 1
        assert "yield" in compiled.source_code

    def test_no_interpreter_calls_in_generated_code(self):
        plan = Filter(SCAN, trace_lambda(lambda s: s.x > 1))
        compiled = compile_plan(plan)
        assert "interpret" not in compiled.source_code
        assert "make_callable" not in compiled.source_code

    def test_blocking_operator_splits_loops(self):
        plan = Sort(
            Filter(SCAN, trace_lambda(lambda s: s.x > 0)),
            (trace_lambda(lambda s: s.x),),
            (False,),
        )
        compiled = compile_plan(plan)
        assert compiled.source_code.count("for ") >= 2  # input loop + output loop

    def test_scalar_plan_returns_not_yields(self):
        plan = ScalarAggregate(
            SCAN,
            (AggregateSpec("count", None),),
            Var("__agg0"),
        )
        compiled = compile_plan(plan)
        assert compiled.scalar
        assert "yield" not in compiled.source_code
        assert "return" in compiled.source_code

    def test_unknown_plan_node_raises(self):
        class Alien:
            pass

        with pytest.raises(CodegenError, match="no pipeline lowering"):
            compile_plan(Alien())


class TestExecutionSemantics:
    def test_filter_project(self):
        plan = Project(
            Filter(SCAN, trace_lambda(lambda s: s.x > 1)),
            trace_lambda(lambda s: s.x * 10),
        )
        assert run(plan, [item(x=1), item(x=2), item(x=3)]) == [20, 30]

    def test_join_probe_order(self):
        plan = Join(
            Scan(0, "L"),
            Scan(1, "R"),
            trace_lambda(lambda l: l.k),
            trace_lambda(lambda r: r.k),
            trace_lambda(lambda l, r: new(a=l.a, b=r.b)),
        )
        left = [item(k=1, a="x"), item(k=2, a="y"), item(k=1, a="z")]
        right = [item(k=1, b=10), item(k=1, b=20)]
        rows = run(plan, left, right)
        assert [(r.a, r.b) for r in rows] == [
            ("x", 10), ("x", 20), ("z", 10), ("z", 20)
        ]

    def test_group_aggregate_first_seen_order(self):
        plan = GroupAggregate(
            SCAN,
            trace_lambda(lambda s: s.g),
            (AggregateSpec("sum", trace_lambda(lambda s: s.v)),),
            new(g=Var("__key"), total=Var("__agg0"))._node,
        )
        rows = run(plan, [item(g="b", v=1), item(g="a", v=2), item(g="b", v=3)])
        assert [(r.g, r.total) for r in rows] == [("b", 4), ("a", 2)]

    def test_unfused_groupby_project_with_aggregates(self):
        # Project-over-GroupBy with AggCalls: the ablation codegen path
        expr = QueryOp(
            "select",
            QueryOp("group_by", SourceExpr(0, "T"), (trace_lambda(lambda s: s.g),)),
            (
                trace_lambda(
                    lambda g: new(g=g.key, n=g.count(), t=g.sum(lambda s: s.v))
                ),
            ),
        )
        from repro.plans.translate import TranslateOptions

        plan = translate(expr, TranslateOptions(fuse_aggregates=False))
        rows = run(plan, [item(g=1, v=5), item(g=1, v=7), item(g=2, v=1)])
        assert [(r.g, r.n, r.t) for r in rows] == [(1, 2, 12), (2, 1, 1)]

    def test_unfused_avg(self):
        expr = QueryOp(
            "select",
            QueryOp("group_by", SourceExpr(0, "T"), (trace_lambda(lambda s: s.g),)),
            (trace_lambda(lambda g: new(a=g.avg(lambda s: s.v))),),
        )
        from repro.plans.translate import TranslateOptions

        plan = translate(expr, TranslateOptions(fuse_aggregates=False))
        rows = run(plan, [item(g=1, v=2.0), item(g=1, v=4.0)])
        assert rows[0].a == pytest.approx(3.0)

    def test_unfused_min_max(self):
        expr = QueryOp(
            "select",
            QueryOp("group_by", SourceExpr(0, "T"), (trace_lambda(lambda s: s.g),)),
            (
                trace_lambda(
                    lambda g: new(lo=g.min(lambda s: s.v), hi=g.max(lambda s: s.v))
                ),
            ),
        )
        from repro.plans.translate import TranslateOptions

        plan = translate(expr, TranslateOptions(fuse_aggregates=False))
        rows = run(plan, [item(g=1, v=3), item(g=1, v=9)])
        assert (rows[0].lo, rows[0].hi) == (3, 9)

    def test_limit_mid_pipeline(self):
        plan = Project(
            Limit(SCAN, count=Constant(2)),
            trace_lambda(lambda s: s.x),
        )
        assert run(plan, [item(x=i) for i in range(5)]) == [0, 1]

    def test_limit_offset(self):
        plan = Limit(SCAN, count=Constant(2), offset=Constant(1))
        rows = run(plan, [item(x=i) for i in range(5)])
        assert [r.x for r in rows] == [1, 2]

    def test_distinct(self):
        plan = Distinct(Project(SCAN, trace_lambda(lambda s: s.x)))
        assert run(plan, [item(x=1), item(x=2), item(x=1)]) == [1, 2]

    def test_concat(self):
        plan = Concat(Scan(0, "A"), Scan(1, "B"))
        rows = run(plan, [item(x=1)], [item(x=2)])
        assert [r.x for r in rows] == [1, 2]

    def test_topn_with_param_count(self):
        from repro.expressions import Param

        plan = TopN(SCAN, (trace_lambda(lambda s: s.x),), (False,), Param("n"))
        compiled = compile_plan(plan)
        rows = list(compiled.execute([[item(x=3), item(x=1), item(x=2)]], {"n": 2}))
        assert [r.x for r in rows] == [1, 2]

    def test_groupby_yields_groupings(self):
        plan = GroupBy(SCAN, trace_lambda(lambda s: s.g))
        groups = run(plan, [item(g=1), item(g=2), item(g=1)])
        assert [g.key for g in groups] == [1, 2]
        assert len(list(groups[0])) == 2

    def test_scalar_sum_filtered(self):
        plan = ScalarAggregate(
            Filter(SCAN, trace_lambda(lambda s: s.x > 1)),
            (AggregateSpec("sum", trace_lambda(lambda s: s.x)),),
            Var("__agg0"),
        )
        assert run(plan, [item(x=1), item(x=2), item(x=3)]) == 5

    def test_multi_key_sort_directions(self):
        plan = Sort(
            SCAN,
            (trace_lambda(lambda s: s.a), trace_lambda(lambda s: s.b)),
            (False, True),
        )
        rows = run(
            plan,
            [item(a=1, b=1), item(a=0, b=1), item(a=1, b=9), item(a=0, b=5)],
        )
        assert [(r.a, r.b) for r in rows] == [(0, 5), (0, 1), (1, 9), (1, 1)]

    def test_params_bound_once_in_preamble(self):
        from repro.expressions import Param, Binary, Member

        predicate = Lambda(
            ("s",),
            Binary(
                "and",
                Binary("gt", Member(Var("s"), "x"), Param("t")),
                Binary("lt", Member(Var("s"), "x"), Param("t")),
            ),
        )
        compiled = compile_plan(Filter(SCAN, predicate))
        # the parameter is fetched from _params exactly once
        assert compiled.source_code.count("_params['t']") == 1


class TestCompiledQueryMetadata:
    def test_timings_recorded(self):
        compiled = compile_plan(Filter(SCAN, trace_lambda(lambda s: s.x > 1)))
        assert compiled.codegen_seconds > 0
        assert compiled.compile_seconds > 0
        assert compiled.engine == "compiled"

    def test_source_is_valid_python(self):
        import ast

        compiled = compile_plan(
            Sort(SCAN, (trace_lambda(lambda s: s.x),), (True,))
        )
        ast.parse(compiled.source_code)
